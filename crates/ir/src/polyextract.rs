//! Extraction of polynomial representations from IR functions (§3.2).
//!
//! After normalization ([`crate::transform::normalize`]) the function body is
//! a single `return` of an arithmetic expression. Linear/polynomial arithmetic
//! converts directly; calls to nonlinear elementary functions are replaced by
//! truncated Taylor series; genuinely non-polynomial constructs (division by a
//! variable) are reported as errors so the caller can leave that code block to
//! conventional compilation — the same fallback the paper uses.

use symmap_algebra::expr::Expr as SymExpr;
use symmap_algebra::poly::Poly;
use symmap_numeric::Rational;

use crate::ast::{BinOp, Expr, Function, IrError, Stmt};
use crate::transform::normalize;

/// Number of Taylor terms used when a nonlinear call has to be approximated.
pub const DEFAULT_SERIES_TERMS: usize = 6;

/// Extracts the polynomial computed by `f` (normalizing first). Nonlinear
/// calls are replaced by truncated Taylor expansions.
///
/// # Errors
///
/// Returns [`IrError::MissingReturn`] when the function never returns and
/// [`IrError::NotPolynomial`] for constructs with no polynomial model.
pub fn extract_polynomial(f: &Function) -> Result<Poly, IrError> {
    extract_polynomial_with_terms(f, DEFAULT_SERIES_TERMS)
}

/// [`extract_polynomial`] with an explicit series-truncation length.
///
/// # Errors
///
/// See [`extract_polynomial`].
pub fn extract_polynomial_with_terms(f: &Function, terms: usize) -> Result<Poly, IrError> {
    let normalized = normalize(f);
    let ret = normalized
        .body
        .iter()
        .find_map(|s| match s {
            Stmt::Return(e) => Some(e.clone()),
            _ => None,
        })
        .ok_or(IrError::MissingReturn)?;
    let sym = to_symbolic(&ret)?;
    let approximated = sym.approximate_calls(terms, 1 << 20);
    approximated
        .to_poly()
        .map_err(|e| IrError::NotPolynomial(e.to_string()))
}

/// Converts an IR expression into a symbolic expression tree, keeping
/// nonlinear calls as call nodes (so the caller can decide how to approximate
/// them).
///
/// # Errors
///
/// Returns [`IrError::NotPolynomial`] for division by a non-constant and for
/// unresolved array indexing.
pub fn to_symbolic(e: &Expr) -> Result<SymExpr, IrError> {
    Ok(match e {
        Expr::Number(v) => SymExpr::Constant(
            Rational::approximate_f64(*v, 1 << 24)
                .map_err(|err| IrError::NotPolynomial(err.to_string()))?,
        ),
        Expr::Var(name) => SymExpr::var(name),
        Expr::Neg(a) => SymExpr::Constant(Rational::integer(-1)).mul(to_symbolic(a)?),
        Expr::Binary(a, op, b) => {
            let (a, b) = (to_symbolic(a)?, to_symbolic(b)?);
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.add(SymExpr::Constant(Rational::integer(-1)).mul(b)),
                BinOp::Mul => a.mul(b),
                BinOp::Div => match &b {
                    SymExpr::Constant(c) if !c.is_zero() => {
                        a.mul(SymExpr::Constant(c.recip().expect("nonzero divisor")))
                    }
                    _ => {
                        return Err(IrError::NotPolynomial(
                            "division by a non-constant expression".to_string(),
                        ))
                    }
                },
            }
        }
        Expr::Call(f, a) => SymExpr::Call(*f, Box::new(to_symbolic(a)?)),
        Expr::Index(name, _) => {
            return Err(IrError::NotPolynomial(format!(
                "array `{name}` indexed by a non-constant expression"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use symmap_algebra::var::Var;

    #[test]
    fn straight_line_code_extracts_exactly() {
        let f = Function::parse("f(x, y) { t = x + y; return t * t; }").unwrap();
        assert_eq!(
            extract_polynomial(&f).unwrap(),
            Poly::parse("x^2 + 2*x*y + y^2").unwrap()
        );
    }

    #[test]
    fn unrolled_dot_product_becomes_a_large_linear_form() {
        // The §3.2 goal: loop unrolling turns the loop into one big polynomial
        // covering the whole dot product, increasing the chance of matching a
        // complex library element (here a 4-tap MAC chain).
        let f = Function::parse(
            "dot(c_0, c_1, c_2, c_3, y_0, y_1, y_2, y_3) {
                 acc = 0;
                 for (k = 0; k < 4; k = k + 1) {
                     acc = acc + c[k] * y[k];
                 }
                 return acc;
             }",
        )
        .unwrap();
        let poly = extract_polynomial(&f).unwrap();
        assert_eq!(
            poly,
            Poly::parse("c_0*y_0 + c_1*y_1 + c_2*y_2 + c_3*y_3").unwrap()
        );
        assert_eq!(poly.num_terms(), 4);
    }

    #[test]
    fn nonlinear_calls_become_series() {
        let f = Function::parse("g(x) { return exp(x) - 1; }").unwrap();
        let poly = extract_polynomial(&f).unwrap();
        // Evaluating the series near 0 tracks exp(x) - 1.
        let mut asn = BTreeMap::new();
        asn.insert(Var::new("x"), 0.1);
        assert!((poly.eval_f64(&asn) - (0.1_f64.exp() - 1.0)).abs() < 1e-6);
        // Constant term vanishes.
        assert!(poly
            .coefficient(&symmap_algebra::monomial::Monomial::one())
            .is_zero());
    }

    #[test]
    fn division_by_variable_is_rejected() {
        let f = Function::parse("f(x, y) { return x / y; }").unwrap();
        assert!(matches!(
            extract_polynomial(&f),
            Err(IrError::NotPolynomial(_))
        ));
    }

    #[test]
    fn division_by_constant_is_fine() {
        let f = Function::parse("f(x) { return (x + 1) / 2; }").unwrap();
        assert_eq!(
            extract_polynomial(&f).unwrap(),
            Poly::parse("x/2 + 1/2").unwrap()
        );
    }

    #[test]
    fn polynomial_matches_reference_interpreter() {
        let f = Function::parse(
            "poly(x, y) {
                 a = x * x - y;
                 b = a * y + 3;
                 return b * b - x;
             }",
        )
        .unwrap();
        let poly = extract_polynomial(&f).unwrap();
        for (x, y) in [(0.5, -1.0), (1.25, 2.0), (-2.0, 0.75)] {
            let mut asn = BTreeMap::new();
            asn.insert(Var::new("x"), x);
            asn.insert(Var::new("y"), y);
            let direct = f.eval(&[x, y]).unwrap();
            assert!(
                (poly.eval_f64(&asn) - direct).abs() < 1e-9,
                "mismatch at ({x},{y})"
            );
        }
    }

    #[test]
    fn missing_return_is_reported() {
        let f = Function::parse("f(x) { y = x * 2; }").unwrap();
        assert!(matches!(
            extract_polynomial(&f),
            Err(IrError::MissingReturn)
        ));
    }
}
