//! Code transformations used to enlarge the polynomials formulated from
//! target code (§3.2): loop unrolling, constant folding and propagation, copy
//! propagation and dead-code elimination.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Expr, Function, Stmt};

/// Fully unrolls every counted loop with constant bounds. Loop-variable
/// references and constant array indices are resolved so the body becomes
/// straight-line code.
pub fn unroll_loops(f: &Function) -> Function {
    Function {
        name: f.name.clone(),
        params: f.params.clone(),
        body: unroll_block(&f.body),
    }
}

fn unroll_block(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                for i in *start..*end {
                    let substituted: Vec<Stmt> = body
                        .iter()
                        .map(|s| substitute_stmt(s, var, i as f64))
                        .collect();
                    out.extend(unroll_block(&substituted));
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

fn substitute_stmt(stmt: &Stmt, var: &str, value: f64) -> Stmt {
    match stmt {
        Stmt::Assign(name, e) => Stmt::Assign(name.clone(), substitute_expr(e, var, value)),
        Stmt::AssignIndex(name, index, e) => Stmt::AssignIndex(
            name.clone(),
            substitute_expr(index, var, value),
            substitute_expr(e, var, value),
        ),
        Stmt::For {
            var: inner,
            start,
            end,
            body,
        } => Stmt::For {
            var: inner.clone(),
            start: *start,
            end: *end,
            body: body
                .iter()
                .map(|s| substitute_stmt(s, var, value))
                .collect(),
        },
        Stmt::Return(e) => Stmt::Return(substitute_expr(e, var, value)),
    }
}

fn substitute_expr(e: &Expr, var: &str, value: f64) -> Expr {
    match e {
        Expr::Var(name) if name == var => Expr::Number(value),
        Expr::Number(_) | Expr::Var(_) => e.clone(),
        Expr::Binary(a, op, b) => Expr::Binary(
            Box::new(substitute_expr(a, var, value)),
            *op,
            Box::new(substitute_expr(b, var, value)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(substitute_expr(a, var, value))),
        Expr::Call(f, a) => Expr::Call(*f, Box::new(substitute_expr(a, var, value))),
        Expr::Index(name, index) => {
            Expr::Index(name.clone(), Box::new(substitute_expr(index, var, value)))
        }
    }
}

/// Folds constant subexpressions and resolves constant array indices into
/// scalar variables (`a[2]` becomes `a_2`), which is what makes unrolled loops
/// straight-line.
pub fn fold_constants(f: &Function) -> Function {
    Function {
        name: f.name.clone(),
        params: f.params.clone(),
        body: f.body.iter().map(fold_stmt).collect(),
    }
}

fn fold_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Assign(name, e) => Stmt::Assign(name.clone(), fold_expr(e)),
        Stmt::AssignIndex(name, index, e) => {
            let index = fold_expr(index);
            let value = fold_expr(e);
            if let Expr::Number(i) = index {
                Stmt::Assign(format!("{name}_{}", i as i64), value)
            } else {
                Stmt::AssignIndex(name.clone(), index, value)
            }
        }
        Stmt::For {
            var,
            start,
            end,
            body,
        } => Stmt::For {
            var: var.clone(),
            start: *start,
            end: *end,
            body: body.iter().map(fold_stmt).collect(),
        },
        Stmt::Return(e) => Stmt::Return(fold_expr(e)),
    }
}

fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Number(_) | Expr::Var(_) => e.clone(),
        Expr::Binary(a, op, b) => {
            let (a, b) = (fold_expr(a), fold_expr(b));
            if let (Expr::Number(x), Expr::Number(y)) = (&a, &b) {
                return Expr::Number(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                });
            }
            // Identity simplifications that shrink unrolled code.
            match (&a, op, &b) {
                (Expr::Number(z), BinOp::Add, other) if *z == 0.0 => other.clone(),
                (other, BinOp::Add, Expr::Number(z)) if *z == 0.0 => other.clone(),
                (other, BinOp::Sub, Expr::Number(z)) if *z == 0.0 => other.clone(),
                (Expr::Number(o), BinOp::Mul, other) if *o == 1.0 => other.clone(),
                (other, BinOp::Mul, Expr::Number(o)) if *o == 1.0 => other.clone(),
                (Expr::Number(z), BinOp::Mul, _) | (_, BinOp::Mul, Expr::Number(z))
                    if *z == 0.0 =>
                {
                    Expr::Number(0.0)
                }
                _ => Expr::Binary(Box::new(a), *op, Box::new(b)),
            }
        }
        Expr::Neg(a) => {
            let a = fold_expr(a);
            if let Expr::Number(x) = a {
                Expr::Number(-x)
            } else {
                Expr::Neg(Box::new(a))
            }
        }
        Expr::Call(f, a) => Expr::Call(*f, Box::new(fold_expr(a))),
        Expr::Index(name, index) => {
            let index = fold_expr(index);
            if let Expr::Number(i) = index {
                Expr::Var(format!("{name}_{}", i as i64))
            } else {
                Expr::Index(name.clone(), Box::new(index))
            }
        }
    }
}

/// Propagates copies and forward-substitutes single-use temporaries so the
/// final `return` expression mentions as much of the computation as possible
/// (producing the *large polynomial* the identification step wants). Also
/// drops assignments that are never read (dead-code elimination).
pub fn propagate_and_inline(f: &Function) -> Function {
    let mut defs: BTreeMap<String, Expr> = BTreeMap::new();
    let mut body = Vec::new();
    for stmt in &f.body {
        match stmt {
            Stmt::Assign(name, e) => {
                let inlined = inline_expr(e, &defs);
                defs.insert(name.clone(), inlined);
            }
            Stmt::Return(e) => {
                body.push(Stmt::Return(inline_expr(e, &defs)));
                break;
            }
            other => body.push(other.clone()),
        }
    }
    Function {
        name: f.name.clone(),
        params: f.params.clone(),
        body,
    }
}

fn inline_expr(e: &Expr, defs: &BTreeMap<String, Expr>) -> Expr {
    match e {
        Expr::Var(name) => defs.get(name).cloned().unwrap_or_else(|| e.clone()),
        Expr::Number(_) => e.clone(),
        Expr::Binary(a, op, b) => Expr::Binary(
            Box::new(inline_expr(a, defs)),
            *op,
            Box::new(inline_expr(b, defs)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(inline_expr(a, defs))),
        Expr::Call(f, a) => Expr::Call(*f, Box::new(inline_expr(a, defs))),
        Expr::Index(name, index) => Expr::Index(name.clone(), Box::new(inline_expr(index, defs))),
    }
}

/// The full §3.2 normalization pipeline: unroll, fold, propagate.
pub fn normalize(f: &Function) -> Function {
    propagate_and_inline(&fold_constants(&unroll_loops(f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Function;

    #[test]
    fn unrolling_preserves_semantics() {
        let f = Function::parse(
            "dot(a_0, a_1, a_2, b_0, b_1, b_2) {
                 acc = 0;
                 for (i = 0; i < 3; i = i + 1) {
                     acc = acc + a[i] * b[i];
                 }
                 return acc;
             }",
        )
        .unwrap();
        let unrolled = normalize(&f);
        assert!(unrolled.body.iter().all(|s| !matches!(s, Stmt::For { .. })));
        let args = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(f.eval(&args).unwrap(), unrolled.eval(&args).unwrap());
    }

    #[test]
    fn constant_folding_collapses_arithmetic() {
        let f = Function::parse("f(x) { return x * (2 + 3) + 0; }").unwrap();
        let folded = normalize(&f);
        match &folded.body[0] {
            Stmt::Return(Expr::Binary(a, BinOp::Mul, b)) => {
                assert!(matches!(**a, Expr::Var(_)));
                assert!(matches!(**b, Expr::Number(v) if v == 5.0));
            }
            other => panic!("unexpected folded body {other:?}"),
        }
    }

    #[test]
    fn propagation_inlines_temporaries() {
        let f =
            Function::parse("f(x, y) { t = x + y; u = t * t; dead = x * 99; return u; }").unwrap();
        let n = normalize(&f);
        // The single remaining statement is the return; dead code is gone.
        assert_eq!(n.body.len(), 1);
        assert_eq!(f.eval(&[1.5, 2.5]).unwrap(), n.eval(&[1.5, 2.5]).unwrap());
    }

    #[test]
    fn nested_loops_unroll() {
        let f = Function::parse(
            "m(x) {
                 acc = 0;
                 for (i = 0; i < 2; i = i + 1) {
                     for (j = 0; j < 2; j = j + 1) {
                         acc = acc + x * i + j;
                     }
                 }
                 return acc;
             }",
        )
        .unwrap();
        let n = normalize(&f);
        assert_eq!(f.eval(&[3.0]).unwrap(), n.eval(&[3.0]).unwrap());
    }

    #[test]
    fn identity_simplifications() {
        let f = Function::parse("f(x) { return 1 * x + 0 * x + (x - 0); }").unwrap();
        let n = normalize(&f);
        assert_eq!(n.eval(&[7.0]).unwrap(), 14.0);
    }
}
