//! Abstract syntax tree and parser for the algorithmic-level language.
//!
//! The language is the subset of C needed to express the arithmetic kernels
//! the paper maps: assignments, arithmetic expressions with calls to
//! elementary functions, counted `for` loops with constant bounds, `if` with
//! constant-foldable conditions, and a final `return`.

use std::collections::BTreeMap;
use std::fmt;

use symmap_numeric::series::Function as MathFunction;

/// Errors produced while parsing or analysing IR programs.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// The source text could not be parsed.
    Parse(String),
    /// A variable was used before being defined.
    UndefinedVariable(String),
    /// The function has no `return` statement.
    MissingReturn,
    /// The program is not representable as a polynomial.
    NotPolynomial(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse(m) => write!(f, "parse error: {m}"),
            IrError::UndefinedVariable(v) => write!(f, "variable `{v}` used before definition"),
            IrError::MissingReturn => write!(f, "function has no return statement"),
            IrError::NotPolynomial(m) => write!(f, "not a polynomial: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A floating-point literal.
    Number(f64),
    /// A variable reference.
    Var(String),
    /// Binary operation.
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Call to an elementary math function.
    Call(MathFunction, Box<Expr>),
    /// Array-style indexed variable `a[i]`, linearized to `a_i` when the index
    /// is constant (after unrolling).
    Index(String, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (only by constants is polynomial-friendly).
    Div,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr;` (also used for `a[i] = expr;` via [`Expr::Index`] names).
    Assign(String, Expr),
    /// `a[index] = expr;`
    AssignIndex(String, Expr, Expr),
    /// `for (i = start; i < end; i = i + 1) { body }` with constant bounds.
    For {
        var: String,
        start: i64,
        end: i64,
        body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
}

/// A parsed function: name, parameters and body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<String>,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Parses a function definition; see the module documentation for the
    /// accepted grammar.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Parse`] on malformed input.
    pub fn parse(source: &str) -> Result<Self, IrError> {
        Parser::new(source).function()
    }

    /// Evaluates the function on concrete arguments (reference semantics used
    /// to validate transformations).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UndefinedVariable`] or [`IrError::MissingReturn`]
    /// when the program is ill-formed.
    pub fn eval(&self, args: &[f64]) -> Result<f64, IrError> {
        let mut env: BTreeMap<String, f64> = BTreeMap::new();
        for (p, v) in self.params.iter().zip(args) {
            env.insert(p.clone(), *v);
        }
        eval_block(&self.body, &mut env)?.ok_or(IrError::MissingReturn)
    }
}

fn eval_block(stmts: &[Stmt], env: &mut BTreeMap<String, f64>) -> Result<Option<f64>, IrError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(name, e) => {
                let v = eval_expr(e, env)?;
                env.insert(name.clone(), v);
            }
            Stmt::AssignIndex(name, index, e) => {
                let idx = eval_expr(index, env)? as i64;
                let v = eval_expr(e, env)?;
                env.insert(format!("{name}_{idx}"), v);
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                for i in *start..*end {
                    env.insert(var.clone(), i as f64);
                    if let Some(v) = eval_block(body, env)? {
                        return Ok(Some(v));
                    }
                }
            }
            Stmt::Return(e) => return Ok(Some(eval_expr(e, env)?)),
        }
    }
    Ok(None)
}

fn eval_expr(e: &Expr, env: &BTreeMap<String, f64>) -> Result<f64, IrError> {
    Ok(match e {
        Expr::Number(v) => *v,
        Expr::Var(name) => *env
            .get(name)
            .ok_or_else(|| IrError::UndefinedVariable(name.clone()))?,
        Expr::Binary(a, op, b) => {
            let (a, b) = (eval_expr(a, env)?, eval_expr(b, env)?);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
            }
        }
        Expr::Neg(a) => -eval_expr(a, env)?,
        Expr::Call(f, a) => f.eval(eval_expr(a, env)?),
        Expr::Index(name, index) => {
            let idx = eval_expr(index, env)? as i64;
            let key = format!("{name}_{idx}");
            *env.get(&key).ok_or(IrError::UndefinedVariable(key))?
        }
    })
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<String>,
    pos: usize,
    source: &'a str,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str) -> Self {
        let mut tokens = Vec::new();
        let mut chars = source.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut t = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            t.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push(t);
                }
                c if c.is_ascii_digit() => {
                    let mut t = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() || c == '.' {
                            t.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push(t);
                }
                _ => {
                    // Two-character operators we care about: `<=`, `==`.
                    let mut t = c.to_string();
                    chars.next();
                    if (c == '<' || c == '=' || c == '>') && chars.peek() == Some(&'=') {
                        t.push('=');
                        chars.next();
                    }
                    tokens.push(t);
                }
            }
        }
        Parser {
            tokens,
            pos: 0,
            source,
        }
    }

    fn err(&self, message: &str) -> IrError {
        IrError::Parse(format!(
            "{message} (near token {} of `{}`)",
            self.pos,
            self.source.trim()
        ))
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn bump(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &str) -> Result<(), IrError> {
        if self.peek() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!(
                "expected `{token}`, found `{}`",
                self.peek().unwrap_or("eof")
            )))
        }
    }

    fn function(&mut self) -> Result<Function, IrError> {
        let name = self
            .bump()
            .ok_or_else(|| self.err("expected function name"))?;
        self.expect("(")?;
        let mut params = Vec::new();
        while self.peek() != Some(")") {
            params.push(self.bump().ok_or_else(|| self.err("expected parameter"))?);
            if self.peek() == Some(",") {
                self.pos += 1;
            }
        }
        self.expect(")")?;
        self.expect("{")?;
        let body = self.block()?;
        self.expect("}")?;
        if self.pos != self.tokens.len() {
            return Err(self.err("unexpected trailing tokens"));
        }
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, IrError> {
        let mut stmts = Vec::new();
        while let Some(t) = self.peek() {
            if t == "}" {
                break;
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, IrError> {
        match self.peek() {
            Some("return") => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(";")?;
                Ok(Stmt::Return(e))
            }
            Some("for") => {
                self.pos += 1;
                self.expect("(")?;
                let var = self
                    .bump()
                    .ok_or_else(|| self.err("expected loop variable"))?;
                self.expect("=")?;
                let start = self.integer()?;
                self.expect(";")?;
                let var2 = self
                    .bump()
                    .ok_or_else(|| self.err("expected loop variable"))?;
                if var2 != var {
                    return Err(self.err("loop condition must test the loop variable"));
                }
                self.expect("<")?;
                let end = self.integer()?;
                self.expect(";")?;
                // Accept `i = i + 1` or `i++`.
                let var3 = self
                    .bump()
                    .ok_or_else(|| self.err("expected loop increment"))?;
                if var3 != var {
                    return Err(self.err("loop increment must update the loop variable"));
                }
                if self.peek() == Some("+") {
                    self.pos += 1;
                    self.expect("+")?;
                } else {
                    self.expect("=")?;
                    let v = self.bump();
                    if v.as_deref() != Some(var.as_str()) {
                        return Err(self.err("loop increment must be `i = i + 1`"));
                    }
                    self.expect("+")?;
                    let one = self.integer()?;
                    if one != 1 {
                        return Err(self.err("only unit-stride loops are supported"));
                    }
                }
                self.expect(")")?;
                self.expect("{")?;
                let body = self.block()?;
                self.expect("}")?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                })
            }
            Some(_) => {
                let name = self.bump().ok_or_else(|| self.err("expected identifier"))?;
                if self.peek() == Some("[") {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.expect("]")?;
                    self.expect("=")?;
                    let e = self.expr()?;
                    self.expect(";")?;
                    Ok(Stmt::AssignIndex(name, index, e))
                } else {
                    self.expect("=")?;
                    let e = self.expr()?;
                    self.expect(";")?;
                    Ok(Stmt::Assign(name, e))
                }
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn integer(&mut self) -> Result<i64, IrError> {
        let t = self.bump().ok_or_else(|| self.err("expected integer"))?;
        t.parse()
            .map_err(|_| self.err(&format!("`{t}` is not an integer")))
    }

    fn expr(&mut self) -> Result<Expr, IrError> {
        let mut acc = self.term()?;
        while let Some(t) = self.peek() {
            let op = match t {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            acc = Expr::Binary(Box::new(acc), op, Box::new(self.term()?));
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<Expr, IrError> {
        let mut acc = self.factor()?;
        while let Some(t) = self.peek() {
            let op = match t {
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            acc = Expr::Binary(Box::new(acc), op, Box::new(self.factor()?));
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Expr, IrError> {
        match self.bump().as_deref() {
            Some("(") => {
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some("-") => Ok(Expr::Neg(Box::new(self.factor()?))),
            Some(t) if t.chars().next().is_some_and(|c| c.is_ascii_digit()) => t
                .parse()
                .map(Expr::Number)
                .map_err(|_| self.err(&format!("bad number `{t}`"))),
            Some(t)
                if t.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_') =>
            {
                let name = t.to_string();
                if self.peek() == Some("(") {
                    self.pos += 1;
                    let arg = self.expr()?;
                    self.expect(")")?;
                    let func = match name.as_str() {
                        "exp" => MathFunction::Exp,
                        "log1p" | "log" => MathFunction::Ln1p,
                        "sin" => MathFunction::Sin,
                        "cos" => MathFunction::Cos,
                        "atan" => MathFunction::Atan,
                        "sqrt1p" | "sqrt" => MathFunction::Sqrt1p,
                        "pow43" => MathFunction::Pow43,
                        other => return Err(self.err(&format!("unknown function `{other}`"))),
                    };
                    Ok(Expr::Call(func, Box::new(arg)))
                } else if self.peek() == Some("[") {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.expect("]")?;
                    Ok(Expr::Index(name, Box::new(index)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(&format!("unexpected token `{}`", other.unwrap_or("eof")))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_straight_line_function() {
        let f = Function::parse("f(x, y) { t = x + y; return t * t; }").unwrap();
        assert_eq!(f.name, "f");
        assert_eq!(f.params, vec!["x", "y"]);
        assert_eq!(f.body.len(), 2);
        assert_eq!(f.eval(&[2.0, 3.0]).unwrap(), 25.0);
    }

    #[test]
    fn parses_for_loop_and_arrays() {
        let f = Function::parse(
            "dot(a_0, a_1, a_2, b_0, b_1, b_2) {
                 acc = 0;
                 for (i = 0; i < 3; i = i + 1) {
                     acc = acc + a[i] * b[i];
                 }
                 return acc;
             }",
        )
        .unwrap();
        let v = f.eval(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(v, 32.0);
    }

    #[test]
    fn parses_calls_and_negation() {
        let f = Function::parse("g(x) { return -exp(x) + 1; }").unwrap();
        let v = f.eval(&[0.5]).unwrap();
        assert!((v - (1.0 - 0.5_f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn errors_on_malformed_source() {
        assert!(Function::parse("f(x) { return x + ; }").is_err());
        assert!(Function::parse("f(x) { x = 1 }").is_err());
        assert!(Function::parse("f(x) { return unknown_fn(x); }").is_err());
        assert!(Function::parse("").is_err());
    }

    #[test]
    fn undefined_variable_and_missing_return() {
        let f = Function::parse("f(x) { y = z + 1; return y; }").unwrap();
        assert!(matches!(f.eval(&[1.0]), Err(IrError::UndefinedVariable(_))));
        let f = Function::parse("f(x) { y = x; }").unwrap();
        assert!(matches!(f.eval(&[1.0]), Err(IrError::MissingReturn)));
    }

    #[test]
    fn division_parses() {
        let f = Function::parse("f(x) { return x / 2 + 1; }").unwrap();
        assert_eq!(f.eval(&[4.0]).unwrap(), 3.0);
    }
}
