//! Arbitrary-precision signed integers.
//!
//! Polynomial coefficients blow up quickly under Gröbner-basis reduction, so
//! fixed-width integers are not an option. [`BigInt`] is a compact
//! sign-magnitude implementation over base-2³² limbs with the operations the
//! algebra engine needs: ring arithmetic, Euclidean division, gcd, comparison,
//! decimal formatting/parsing and small-integer interop.
//!
//! ```
//! use symmap_numeric::bigint::BigInt;
//!
//! let a = BigInt::from(1_000_000_007_i64);
//! let b = &a * &a;
//! assert_eq!(b.to_string(), "1000000014000000049");
//! ```

// lint:allow-file(D3): to_f64/approximate conversions are the declared
// float *exit* boundary (reporting only); all arithmetic is exact limbs.
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

use crate::error::NumericError;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

/// An arbitrary-precision signed integer.
///
/// The representation is sign-magnitude: `limbs` stores the magnitude in
/// little-endian base-2³² with no trailing zero limbs; `sign` is
/// `Sign::Zero` iff `limbs` is empty.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    limbs: Vec<u32>,
}

const BASE: u64 = 1 << 32;

impl BigInt {
    /// The additive identity.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            limbs: Vec::new(),
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        BigInt::from(1_i64)
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if `self` is exactly one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if `self` is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` if `self` is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        let mut r = self.clone();
        if r.sign == Sign::Minus {
            r.sign = Sign::Plus;
        }
        r
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        match self.sign {
            Sign::Minus => -1,
            Sign::Zero => 0,
            Sign::Plus => 1,
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Converts to `i64` if the value fits.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Overflow`] when the magnitude exceeds `i64`.
    pub fn to_i64(&self) -> Result<i64, NumericError> {
        if self.is_zero() {
            return Ok(0);
        }
        if self.limbs.len() > 2 {
            return Err(NumericError::Overflow(self.to_string()));
        }
        let mut mag: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u128) << (32 * i);
        }
        match self.sign {
            Sign::Plus if mag <= i64::MAX as u128 => Ok(mag as i64),
            Sign::Minus if mag <= i64::MAX as u128 + 1 => Ok((mag as i128).wrapping_neg() as i64),
            _ => Err(NumericError::Overflow(self.to_string())),
        }
    }

    /// Converts to `u64` if the value is non-negative and fits.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Overflow`] for negative values or magnitudes
    /// exceeding `u64`.
    pub fn to_u64(&self) -> Result<u64, NumericError> {
        if self.is_negative() || self.limbs.len() > 2 {
            return Err(NumericError::Overflow(self.to_string()));
        }
        let mut mag: u64 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u64) << (32 * i);
        }
        Ok(mag)
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0_f64;
        for &l in self.limbs.iter().rev() {
            v = v * BASE as f64 + l as f64;
        }
        if self.sign == Sign::Minus {
            -v
        } else {
            v
        }
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, limbs }
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0_u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push((s % BASE) as u32);
            carry = s / BASE;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Subtracts magnitudes, requires `a >= b`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0_i64;
        for (i, &limb) in a.iter().enumerate() {
            let mut d = limb as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                d += BASE as i64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0_u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0_u64;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = (cur % BASE) as u32;
                carry = cur / BASE;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur % BASE) as u32;
                carry = cur / BASE;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divides magnitude by a single u32, returning (quotient, remainder).
    fn divrem_mag_small(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        let mut q = vec![0_u32; a.len()];
        let mut rem = 0_u64;
        for i in (0..a.len()).rev() {
            let cur = rem * BASE + a[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u32)
    }

    /// Schoolbook long division of magnitudes: returns (quotient, remainder).
    fn divrem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero magnitude");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::divrem_mag_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Knuth algorithm D with normalization.
        let shift = b.last().unwrap().leading_zeros();
        let bn = Self::shl_bits(b, shift);
        let mut an = Self::shl_bits(a, shift);
        an.push(0);
        let n = bn.len();
        let m = an.len() - n;
        let mut q = vec![0_u32; m];
        let btop = bn[n - 1] as u64;
        let bsec = if n >= 2 { bn[n - 2] as u64 } else { 0 };
        for j in (0..m).rev() {
            let num = (an[j + n] as u64) * BASE + an[j + n - 1] as u64;
            let mut qhat = num / btop;
            let mut rhat = num % btop;
            while qhat >= BASE
                || qhat * bsec > rhat * BASE + if j + n >= 2 { an[j + n - 2] as u64 } else { 0 }
            {
                qhat -= 1;
                rhat += btop;
                if rhat >= BASE {
                    break;
                }
            }
            // Multiply and subtract.
            let mut borrow = 0_i64;
            let mut carry = 0_u64;
            for i in 0..n {
                let p = qhat * bn[i] as u64 + carry;
                carry = p / BASE;
                let sub = an[j + i] as i64 - (p % BASE) as i64 - borrow;
                if sub < 0 {
                    an[j + i] = (sub + BASE as i64) as u32;
                    borrow = 1;
                } else {
                    an[j + i] = sub as u32;
                    borrow = 0;
                }
            }
            let sub = an[j + n] as i64 - carry as i64 - borrow;
            if sub < 0 {
                // qhat was one too large: add back.
                an[j + n] = (sub + BASE as i64) as u32;
                qhat -= 1;
                let mut c = 0_u64;
                for i in 0..n {
                    let s = an[j + i] as u64 + bn[i] as u64 + c;
                    an[j + i] = (s % BASE) as u32;
                    c = s / BASE;
                }
                an[j + n] = an[j + n].wrapping_add(c as u32);
            } else {
                an[j + n] = sub as u32;
            }
            q[j] = qhat as u32;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        let mut rem = an[..n].to_vec();
        while rem.last() == Some(&0) {
            rem.pop();
        }
        let rem = Self::shr_bits(&rem, shift);
        (q, rem)
    }

    fn shl_bits(a: &[u32], bits: u32) -> Vec<u32> {
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0_u32;
        for &l in a {
            out.push((l << bits) | carry);
            carry = l >> (32 - bits);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    fn shr_bits(a: &[u32], bits: u32) -> Vec<u32> {
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = vec![0_u32; a.len()];
        for i in 0..a.len() {
            out[i] = a[i] >> bits;
            if i + 1 < a.len() {
                out[i] |= a[i + 1] << (32 - bits);
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Euclidean-style division returning `(quotient, remainder)` with the
    /// remainder carrying the sign of the dividend (truncated division, like
    /// Rust's `/` and `%` on primitive integers).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (qm, rm) = Self::divrem_mag(&self.limbs, &other.limbs);
        let qsign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        let rsign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (BigInt::from_limbs(qsign, qm), BigInt::from_limbs(rsign, rm))
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Extended Euclidean algorithm: returns `(g, x, y)` with
    /// `g = gcd(self, other) ≥ 0` and `x·self + y·other = g`.
    ///
    /// The Bézout coefficients are the ones produced by the classical
    /// iteration on truncated division, so the result is deterministic for
    /// every sign combination of the inputs.
    pub fn extended_gcd(&self, other: &BigInt) -> (BigInt, BigInt, BigInt) {
        let (mut old_r, mut r) = (self.clone(), other.clone());
        let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
        let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let next_s = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, next_s);
            let next_t = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, next_t);
        }
        if old_r.is_negative() {
            (-old_r, -old_s, -old_t)
        } else {
            (old_r, old_s, old_t)
        }
    }

    /// Least common multiple (always non-negative); zero if either input is zero.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.abs().div_rem(&g);
        &q * &other.abs()
    }

    /// Raises `self` to the power `exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut result = BigInt::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        result
    }

    /// Returns `true` when the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Least non-negative residue of `self` modulo `m`: the value in
    /// `0..m` congruent to `self`. Used to localize rational coefficients
    /// into ℤ/p without materialising a quotient.
    ///
    /// # Panics
    ///
    /// Panics when `m == 0`.
    pub fn mod_u64(&self, m: u64) -> u64 {
        assert!(m > 0, "modulus must be positive");
        let m128 = m as u128;
        // Horner over the little-endian base-2³² limbs, high limb first;
        // the accumulator stays below m·2³² < 2⁹⁶.
        let mut acc: u128 = 0;
        for &l in self.limbs.iter().rev() {
            acc = ((acc << 32) | l as u128) % m128;
        }
        let r = acc as u64;
        if self.is_negative() && r != 0 {
            m - r
        } else {
            r
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let mag = (v as i128).unsigned_abs();
        let mut limbs = vec![(mag & 0xFFFF_FFFF) as u32];
        if mag >> 32 != 0 {
            limbs.push((mag >> 32) as u32);
        }
        BigInt::from_limbs(sign, limbs)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let mut limbs = vec![(v & 0xFFFF_FFFF) as u32];
        if v >> 32 != 0 {
            limbs.push((v >> 32) as u32);
        }
        BigInt::from_limbs(Sign::Plus, limbs)
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        let mut limbs = Vec::with_capacity(4);
        let mut rest = v;
        while rest != 0 {
            limbs.push((rest & 0xFFFF_FFFF) as u32);
            rest >>= 32;
        }
        BigInt::from_limbs(Sign::Plus, limbs)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let mag = BigInt::from(v.unsigned_abs());
        if v < 0 {
            -mag
        } else {
            mag
        }
    }
}

impl FromStr for BigInt {
    type Err = NumericError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(NumericError::Parse(s.to_string()));
        }
        let mut v = BigInt::zero();
        let ten = BigInt::from(10_i64);
        for b in digits.bytes() {
            v = &v * &ten + BigInt::from((b - b'0') as i64);
        }
        if neg {
            v = -v;
        }
        Ok(v)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        while !mag.is_empty() {
            let (q, r) = BigInt::divrem_mag_small(&mag, 1_000_000_000);
            digits.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign == Sign::Minus {
            s.push('-');
        }
        s.push_str(&digits.last().unwrap().to_string());
        for d in digits.iter().rev().skip(1) {
            s.push_str(&format!("{d:09}"));
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Minus, Minus) => Self::cmp_mag(&other.limbs, &self.limbs),
            (Minus, _) => Ordering::Less,
            (Zero, Minus) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Plus) => Ordering::Less,
            (Plus, Plus) => Self::cmp_mag(&self.limbs, &other.limbs),
            (Plus, _) => Ordering::Greater,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = match self.sign {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        };
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        use Sign::*;
        match (self.sign, rhs.sign) {
            (Zero, _) => rhs.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_limbs(a, BigInt::add_mag(&self.limbs, &rhs.limbs)),
            _ => match BigInt::cmp_mag(&self.limbs, &rhs.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(self.sign, BigInt::sub_mag(&self.limbs, &rhs.limbs))
                }
                Ordering::Less => {
                    BigInt::from_limbs(rhs.sign, BigInt::sub_mag(&rhs.limbs, &self.limbs))
                }
            },
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Add<BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        self + &rhs
    }
}

impl Add<&BigInt> for BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        &self + rhs
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_limbs(sign, BigInt::mul_mag(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Div for BigInt {
    type Output = BigInt;
    fn div(self, rhs: BigInt) -> BigInt {
        &self / &rhs
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

impl Rem for BigInt {
    type Output = BigInt;
    fn rem(self, rhs: BigInt) -> BigInt {
        &self % &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::one().to_string(), "1");
    }

    #[test]
    fn from_i64_round_trip() {
        for v in [
            0_i64,
            1,
            -1,
            42,
            -42,
            i64::MAX,
            i64::MIN + 1,
            1 << 32,
            -(1 << 40),
        ] {
            assert_eq!(BigInt::from(v).to_i64().unwrap(), v);
            assert_eq!(BigInt::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn parse_round_trip() {
        let s = "123456789012345678901234567890123456789";
        let v: BigInt = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        let neg: BigInt = format!("-{s}").parse().unwrap();
        assert_eq!(neg.to_string(), format!("-{s}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("12a3".parse::<BigInt>().is_err());
        assert!("".parse::<BigInt>().is_err());
        assert!("--3".parse::<BigInt>().is_err());
    }

    #[test]
    fn addition_and_subtraction() {
        let a: BigInt = "99999999999999999999999999".parse().unwrap();
        let b = BigInt::one();
        assert_eq!((&a + &b).to_string(), "100000000000000000000000000");
        assert_eq!((&a - &a).to_string(), "0");
        assert_eq!((&b - &a).to_string(), "-99999999999999999999999998");
    }

    #[test]
    fn multiplication_known_value() {
        let a: BigInt = "123456789123456789".parse().unwrap();
        let b: BigInt = "987654321987654321".parse().unwrap();
        assert_eq!(
            (&a * &b).to_string(),
            "121932631356500531347203169112635269"
        );
    }

    #[test]
    fn division_small_divisor() {
        let a: BigInt = "1000000000000000000000".parse().unwrap();
        let b = BigInt::from(7_i64);
        let (q, r) = a.div_rem(&b);
        assert_eq!((&q * &b + &r), a);
        assert!(r < b);
    }

    #[test]
    fn division_multi_limb_divisor() {
        let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let b: BigInt = "9876543210987654321".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn division_signs_match_truncation() {
        for (x, y) in [(7_i64, 3_i64), (-7, 3), (7, -3), (-7, -3)] {
            let (q, r) = BigInt::from(x).div_rem(&BigInt::from(y));
            assert_eq!(q.to_i64().unwrap(), x / y);
            assert_eq!(r.to_i64().unwrap(), x % y);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigInt::one().div_rem(&BigInt::zero());
    }

    #[test]
    fn gcd_and_lcm() {
        let a = BigInt::from(48_i64);
        let b = BigInt::from(36_i64);
        assert_eq!(a.gcd(&b).to_i64().unwrap(), 12);
        assert_eq!(a.lcm(&b).to_i64().unwrap(), 144);
        assert_eq!(BigInt::zero().gcd(&b).to_i64().unwrap(), 36);
        assert_eq!(a.gcd(&BigInt::from(-36_i64)).to_i64().unwrap(), 12);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let three = BigInt::from(3_i64);
        assert_eq!(three.pow(0).to_i64().unwrap(), 1);
        assert_eq!(three.pow(5).to_i64().unwrap(), 243);
        assert_eq!(
            BigInt::from(2_i64).pow(100).to_string(),
            "1267650600228229401496703205376"
        );
    }

    #[test]
    fn ordering() {
        let vals: Vec<BigInt> = [-10_i64, -1, 0, 1, 10]
            .iter()
            .map(|&v| BigInt::from(v))
            .collect();
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                assert_eq!(vals[i].cmp(&vals[j]), i.cmp(&j));
            }
        }
    }

    #[test]
    fn bits_counts_magnitude_bits() {
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(BigInt::one().bits(), 1);
        assert_eq!(BigInt::from(255_i64).bits(), 8);
        assert_eq!(BigInt::from(256_i64).bits(), 9);
        assert_eq!(BigInt::from(2_i64).pow(100).bits(), 101);
    }

    #[test]
    fn to_f64_is_close() {
        let v: BigInt = "1000000000000000000000".parse().unwrap();
        let f = v.to_f64();
        assert!((f - 1e21).abs() / 1e21 < 1e-12);
        assert_eq!(BigInt::from(-5_i64).to_f64(), -5.0);
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(BigInt::zero().to_u64().unwrap(), 0);
        assert_eq!(BigInt::from(u64::MAX).to_u64().unwrap(), u64::MAX);
        assert!(BigInt::from(-1_i64).to_u64().is_err());
        assert!((&BigInt::from(u64::MAX) + &BigInt::one()).to_u64().is_err());
    }

    #[test]
    fn from_i128_u128_round_trip() {
        assert_eq!(BigInt::from(0_u128), BigInt::zero());
        assert_eq!(BigInt::from(0_i128), BigInt::zero());
        let v = u128::MAX;
        assert_eq!(BigInt::from(v).to_string(), v.to_string());
        let w = i128::MIN;
        assert_eq!(BigInt::from(w).to_string(), w.to_string());
        assert_eq!(
            BigInt::from(1_i128 << 64).to_string(),
            (1_u128 << 64).to_string()
        );
    }

    #[test]
    fn is_even() {
        assert!(BigInt::zero().is_even());
        assert!(BigInt::from(4_i64).is_even());
        assert!(!BigInt::from(7_i64).is_even());
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in any::<i64>(), b in any::<i64>()) {
            let (ba, bb) = (BigInt::from(a), BigInt::from(b));
            prop_assert_eq!(&ba + &bb, &bb + &ba);
        }

        #[test]
        fn prop_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let sum = a as i128 + b as i128;
            let big = &BigInt::from(a) + &BigInt::from(b);
            prop_assert_eq!(big.to_string(), sum.to_string());
        }

        #[test]
        fn prop_mul_matches_i128(a in -(1_i64<<40)..(1_i64<<40), b in -(1_i64<<40)..(1_i64<<40)) {
            let prod = a as i128 * b as i128;
            let big = &BigInt::from(a) * &BigInt::from(b);
            prop_assert_eq!(big.to_string(), prod.to_string());
        }

        #[test]
        fn prop_divrem_reconstructs(a in any::<i64>(), b in any::<i64>()) {
            prop_assume!(b != 0);
            let (ba, bb) = (BigInt::from(a), BigInt::from(b));
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(&q * &bb + &r, ba);
            prop_assert!(r.abs() < bb.abs());
        }

        #[test]
        fn prop_parse_display_round_trip(a in any::<i64>(), b in any::<i64>()) {
            let big = &BigInt::from(a) * &BigInt::from(b);
            let back: BigInt = big.to_string().parse().unwrap();
            prop_assert_eq!(back, big);
        }

        /// Extended gcd agrees with an i128 oracle on the gcd and produces a
        /// genuine Bézout identity, across every sign combination.
        #[test]
        fn prop_extended_gcd_matches_i128_oracle(a in any::<i64>(), b in any::<i64>()) {
            fn oracle_gcd(mut a: i128, mut b: i128) -> i128 {
                while b != 0 {
                    let r = a % b;
                    a = b;
                    b = r;
                }
                a.abs()
            }
            let (ba, bb) = (BigInt::from(a), BigInt::from(b));
            let (g, x, y) = ba.extended_gcd(&bb);
            prop_assert_eq!(g.to_string(), oracle_gcd(a as i128, b as i128).to_string());
            prop_assert_eq!(&(&x * &ba) + &(&y * &bb), g.clone());
            prop_assert!(!g.is_negative());
        }

        #[test]
        fn prop_gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
            let (ba, bb) = (BigInt::from(a as i64), BigInt::from(b as i64));
            let g = ba.gcd(&bb);
            if !g.is_zero() {
                prop_assert!((&ba % &g).is_zero());
                prop_assert!((&bb % &g).is_zero());
            } else {
                prop_assert!(ba.is_zero() && bb.is_zero());
            }
        }
    }
}
