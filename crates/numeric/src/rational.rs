//! Exact rational numbers over [`BigInt`].
//!
//! Polynomial coefficients in the symbolic algebra engine are exact rationals:
//! Gröbner-basis reduction repeatedly divides by leading coefficients, so the
//! coefficient field must be closed under division.
//!
//! ```
//! use symmap_numeric::rational::Rational;
//!
//! let half = Rational::new(1, 2);
//! let third = Rational::new(1, 3);
//! assert_eq!((half - third).to_string(), "1/6");
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::BigInt;
use crate::error::NumericError;

/// An exact rational number `numerator / denominator`.
///
/// Invariants: the denominator is always strictly positive and
/// `gcd(|numerator|, denominator) == 1`; zero is represented as `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Creates `num / den` from small integers, reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        Rational::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num / den` from big integers, reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// The additive identity `0/1`.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The multiplicative identity `1/1`.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// An integer rational `n/1`.
    pub fn integer(n: i64) -> Self {
        Rational {
            num: BigInt::from(n),
            den: BigInt::one(),
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if the value is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// The numerator (sign-carrying part).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DivisionByZero`] if the value is zero.
    pub fn recip(&self) -> Result<Self, NumericError> {
        if self.is_zero() {
            return Err(NumericError::DivisionByZero);
        }
        Ok(Rational::from_bigints(self.den.clone(), self.num.clone()))
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DivisionByZero`] when raising zero to a
    /// negative power.
    pub fn pow(&self, exp: i32) -> Result<Self, NumericError> {
        if exp >= 0 {
            Ok(Rational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            })
        } else {
            self.recip()?.pow(-exp)
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Scale to keep both parts within f64 range for large operands.
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            self.num.to_f64() / self.den.to_f64()
        } else {
            let shift = (nb.max(db) - 512).max(0) as u32;
            let two = BigInt::from(2_i64);
            let scale = two.pow(shift);
            let (n, _) = self.num.div_rem(&scale);
            let (d, _) = self.den.div_rem(&scale);
            if d.is_zero() {
                if self.num.is_negative() {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            } else {
                n.to_f64() / d.to_f64()
            }
        }
    }

    /// Builds the exact rational equal to an `f64` (which is always a dyadic
    /// rational), e.g. `0.5 -> 1/2`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Domain`] for NaN or infinite inputs.
    pub fn from_f64(v: f64) -> Result<Self, NumericError> {
        if !v.is_finite() {
            return Err(NumericError::Domain(format!("{v} is not finite")));
        }
        if v == 0.0 {
            return Ok(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1_i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1_u64 << 52) - 1);
        let (mantissa, exp2) = if exp == 0 {
            (frac, -1074_i64)
        } else {
            (frac | (1 << 52), exp - 1075)
        };
        let mut num = BigInt::from(mantissa) * BigInt::from(sign);
        let mut den = BigInt::one();
        let two = BigInt::from(2_i64);
        if exp2 >= 0 {
            num = &num * &two.pow(exp2 as u32);
        } else {
            den = two.pow((-exp2) as u32);
        }
        Ok(Rational::from_bigints(num, den))
    }

    /// Approximates an `f64` by a rational with denominator at most
    /// `max_den`, using a continued-fraction (Stern–Brocot) expansion. This is
    /// how truncated-series coefficients are imported into the exact algebra
    /// engine without dragging in 50-digit dyadic denominators.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Domain`] for NaN or infinite inputs.
    pub fn approximate_f64(v: f64, max_den: u64) -> Result<Self, NumericError> {
        if !v.is_finite() {
            return Err(NumericError::Domain(format!("{v} is not finite")));
        }
        let max_den = max_den.max(1);
        let neg = v < 0.0;
        let mut x = v.abs();
        // Continued fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0_u128, 1_u128, 1_u128, 0_u128);
        for _ in 0..64 {
            let a = x.floor();
            if a >= u64::MAX as f64 {
                break;
            }
            let a_u = a as u128;
            let p2 = a_u.saturating_mul(p1).saturating_add(p0);
            let q2 = a_u.saturating_mul(q1).saturating_add(q0);
            if q2 > max_den as u128 {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Ok(Rational::zero());
        }
        let mut r = Rational::from_bigints(BigInt::from(p1 as u64), BigInt::from(q1 as u64));
        if neg {
            r = -r;
        }
        Ok(r)
    }

    /// Rounds toward negative infinity to the nearest integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    fn normalize(&mut self) {
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        if self.den.is_negative() {
            self.num = -self.num.clone();
            self.den = -self.den.clone();
        }
        let g = self.num.gcd(&self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::integer(v)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl FromStr for Rational {
    type Err = NumericError;

    /// Parses `"3"`, `"-3/4"` or a decimal literal such as `"2.5"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(NumericError::DivisionByZero);
            }
            return Ok(Rational::from_bigints(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(NumericError::Parse(s.to_string()));
            }
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10_i64).pow(frac_part.len() as u32);
            let mag = &int.abs() * &scale + frac;
            let num = if negative { -mag } else { mag };
            return Ok(Rational::from_bigints(num, scale));
        }
        let num: BigInt = s.parse()?;
        Ok(Rational::from(num))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::from_bigints(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero");
        Rational::from_bigints(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4).to_string(), "-1/2");
        assert_eq!(Rational::new(0, 5), Rational::zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rational::new(3, 7);
        assert_eq!(&a + &Rational::zero(), a);
        assert_eq!(&a * &Rational::one(), a);
        assert_eq!(&a - &a, Rational::zero());
        assert_eq!(&a / &a, Rational::one());
    }

    #[test]
    fn add_sub_mul_div_known_values() {
        assert_eq!(
            Rational::new(1, 2) + Rational::new(1, 3),
            Rational::new(5, 6)
        );
        assert_eq!(
            Rational::new(1, 2) - Rational::new(1, 3),
            Rational::new(1, 6)
        );
        assert_eq!(
            Rational::new(2, 3) * Rational::new(3, 4),
            Rational::new(1, 2)
        );
        assert_eq!(
            Rational::new(2, 3) / Rational::new(4, 3),
            Rational::new(1, 2)
        );
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(Rational::new(2, 3).pow(3).unwrap(), Rational::new(8, 27));
        assert_eq!(Rational::new(2, 3).pow(-2).unwrap(), Rational::new(9, 4));
        assert_eq!(Rational::new(2, 3).pow(0).unwrap(), Rational::one());
        assert!(Rational::zero().recip().is_err());
        assert!(Rational::zero().pow(-1).is_err());
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::integer(5));
        assert_eq!("2.5".parse::<Rational>().unwrap(), Rational::new(5, 2));
        assert_eq!("-0.125".parse::<Rational>().unwrap(), Rational::new(-1, 8));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::integer(-7).to_string(), "-7");
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(7, 7) == Rational::one());
    }

    #[test]
    fn f64_round_trips() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), Rational::new(1, 2));
        assert_eq!(Rational::from_f64(-0.75).unwrap(), Rational::new(-3, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), Rational::integer(3));
        assert!(Rational::from_f64(f64::NAN).is_err());
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn approximate_f64_bounds_denominator() {
        let pi = std::f64::consts::PI;
        let approx = Rational::approximate_f64(pi, 1000).unwrap();
        assert!(approx.denom() <= &BigInt::from(1000_i64));
        assert!((approx.to_f64() - pi).abs() < 1e-5);
        // The classic 355/113 convergent appears with a denominator cap of 10^4.
        let a2 = Rational::approximate_f64(pi, 10_000).unwrap();
        assert_eq!(a2, Rational::new(355, 113));
        let neg = Rational::approximate_f64(-0.5, 100).unwrap();
        assert_eq!(neg, Rational::new(-1, 2));
    }

    #[test]
    fn floor() {
        assert_eq!(Rational::new(7, 2).floor().to_i64().unwrap(), 3);
        assert_eq!(Rational::new(-7, 2).floor().to_i64().unwrap(), -4);
        assert_eq!(Rational::integer(5).floor().to_i64().unwrap(), 5);
    }

    proptest! {
        #[test]
        fn prop_field_axioms(an in -1000_i64..1000, ad in 1_i64..50,
                             bn in -1000_i64..1000, bd in 1_i64..50,
                             cn in -1000_i64..1000, cd in 1_i64..50) {
            let a = Rational::new(an, ad);
            let b = Rational::new(bn, bd);
            let c = Rational::new(cn, cd);
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn prop_to_f64_matches_float_division(n in -10_000_i64..10_000, d in 1_i64..10_000) {
            let r = Rational::new(n, d);
            let expected = n as f64 / d as f64;
            prop_assert!((r.to_f64() - expected).abs() <= 1e-12 * expected.abs().max(1.0));
        }

        #[test]
        fn prop_from_f64_exact(v in -1.0e6_f64..1.0e6) {
            let r = Rational::from_f64(v).unwrap();
            prop_assert_eq!(r.to_f64(), v);
        }
    }
}
