//! Exact rational numbers with an inline small-value fast path.
//!
//! Polynomial coefficients in the symbolic algebra engine are exact rationals:
//! Gröbner-basis reduction repeatedly divides by leading coefficients, so the
//! coefficient field must be closed under division.
//!
//! Typical Gröbner coefficients are tiny (a handful of digits), yet the
//! original representation heap-allocated two [`BigInt`]s for every value and
//! for every intermediate of every `+ - * /`. [`Rational`] therefore stores
//! small values inline — an `i64` numerator and `u64` denominator — and
//! performs arithmetic in `i128`/`u128` with checked overflow, promoting to
//! the [`BigInt`] pair form only when a result genuinely does not fit.
//! Results that shrink back below the limit are demoted again, so the
//! representation of a value is canonical: equal rationals always have equal
//! representations (required for the derived `Eq`/`Hash`).
//!
//! ```
//! use symmap_numeric::rational::Rational;
//!
//! let half = Rational::new(1, 2);
//! let third = Rational::new(1, 3);
//! assert_eq!((half - third).to_string(), "1/6");
//! ```

// lint:allow-file(D3): to_f64/from_f64/approximate_f64 are the declared
// float conversion boundary; Rational arithmetic itself is exact.
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::BigInt;
use crate::error::NumericError;

/// Internal storage of a [`Rational`].
///
/// Invariants shared by both variants: the denominator is strictly positive,
/// `gcd(|numerator|, denominator) == 1`, and zero is `0/1`. Additionally a
/// `Big` value never fits the `Small` form (numerator outside `i64` or
/// denominator outside `u64`) — every constructor demotes — so the derived
/// `PartialEq`/`Hash` are consistent across variants.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline fast path: `num / den` with `den > 0`.
    Small { num: i64, den: u64 },
    /// Arbitrary-precision fallback `(num, den)` with `den > 0`, boxed so the
    /// rare big coefficient does not widen every term of every polynomial.
    Big(Box<(BigInt, BigInt)>),
}

/// An exact rational number `numerator / denominator`.
///
/// Invariants: the denominator is always strictly positive and
/// `gcd(|numerator|, denominator) == 1`; zero is represented as `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    repr: Repr,
}

/// `gcd` over `u128` magnitudes (Euclid); `gcd(0, x) == x`.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// `gcd` over `u64` magnitudes (Euclid); `gcd(0, x) == x`.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Rational {
    /// Builds a `Small` value directly. Caller guarantees `den > 0` and that
    /// the fraction is fully reduced.
    fn small(num: i64, den: u64) -> Self {
        debug_assert!(den > 0);
        debug_assert!(num != 0 || den == 1);
        Rational {
            repr: Repr::Small { num, den },
        }
    }

    /// Builds from an *already reduced* sign/magnitude pair with `den > 0`,
    /// choosing the smallest representation that fits. Working in unsigned
    /// magnitudes keeps every boundary value representable — a reduced
    /// magnitude of exactly `2^127` (reachable when an `i128` cross-product
    /// sum lands on `i128::MIN`) has no `i128` negation.
    fn from_sign_mag_reduced(negative: bool, mag: u128, den: u128) -> Self {
        debug_assert!(den > 0);
        if mag == 0 {
            return Rational::small(0, 1);
        }
        let num_fits = if negative {
            mag <= i64::MAX as u128 + 1
        } else {
            mag <= i64::MAX as u128
        };
        if num_fits {
            if let Ok(d) = u64::try_from(den) {
                // mag <= 2^63 here, so the negation fits i128 and the cast
                // down to i64 is exact for both signs.
                let n = if negative {
                    (-(mag as i128)) as i64
                } else {
                    mag as i64
                };
                return Rational::small(n, d);
            }
        }
        let num = if negative {
            -BigInt::from(mag)
        } else {
            BigInt::from(mag)
        };
        Rational {
            repr: Repr::Big(Box::new((num, BigInt::from(den)))),
        }
    }

    /// Builds from an *already reduced* `num / den` with `den > 0`.
    fn from_i128_reduced(num: i128, den: u128) -> Self {
        Rational::from_sign_mag_reduced(num < 0, num.unsigned_abs(), den)
    }

    /// Builds from `num / den` with `den > 0`, reducing to lowest terms.
    fn from_i128(num: i128, den: u128) -> Self {
        debug_assert!(den > 0);
        if num == 0 {
            return Rational::small(0, 1);
        }
        let g = gcd_u128(num.unsigned_abs(), den);
        Rational::from_sign_mag_reduced(num < 0, num.unsigned_abs() / g, den / g)
    }

    /// Creates `num / den` from small integers, reducing to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let n = if den < 0 { -(num as i128) } else { num as i128 };
        Rational::from_i128(n, den.unsigned_abs() as u128)
    }

    /// Creates `num / den` from big integers, reducing to lowest terms (and
    /// demoting to the inline form when the reduced value fits).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational::small(0, 1);
        }
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        let (num, den) = if g.is_one() {
            (num, den)
        } else {
            (&num / &g, &den / &g)
        };
        if let (Ok(n), Ok(d)) = (num.to_i64(), den.to_u64()) {
            return Rational::small(n, d);
        }
        Rational {
            repr: Repr::Big(Box::new((num, den))),
        }
    }

    /// The value as a `(numerator, denominator)` pair of big integers.
    fn to_big_pair(&self) -> (BigInt, BigInt) {
        match &self.repr {
            Repr::Small { num, den } => (BigInt::from(*num), BigInt::from(*den)),
            Repr::Big(b) => (b.0.clone(), b.1.clone()),
        }
    }

    /// The additive identity `0/1`.
    pub fn zero() -> Self {
        Rational::small(0, 1)
    }

    /// The multiplicative identity `1/1`.
    pub fn one() -> Self {
        Rational::small(1, 1)
    }

    /// An integer rational `n/1`.
    pub fn integer(n: i64) -> Self {
        Rational::small(n, 1)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small { num: 0, .. })
    }

    /// Returns `true` if the value is exactly one.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small { num: 1, den: 1 })
    }

    /// Returns `true` if the value is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small { den, .. } => *den == 1,
            Repr::Big(b) => b.1.is_one(),
        }
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num < 0,
            Repr::Big(b) => b.0.is_negative(),
        }
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small { num, .. } => *num > 0,
            Repr::Big(b) => b.0.is_positive(),
        }
    }

    /// The numerator (sign-carrying part) as a big integer.
    pub fn numer(&self) -> BigInt {
        match &self.repr {
            Repr::Small { num, .. } => BigInt::from(*num),
            Repr::Big(b) => b.0.clone(),
        }
    }

    /// The denominator (always strictly positive) as a big integer.
    pub fn denom(&self) -> BigInt {
        match &self.repr {
            Repr::Small { den, .. } => BigInt::from(*den),
            Repr::Big(b) => b.1.clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        match &self.repr {
            Repr::Small { num, den } => {
                // |i64::MIN| does not fit i64, so go through i128.
                Rational::from_i128_reduced((*num as i128).abs(), *den as u128)
            }
            Repr::Big(b) => Rational {
                repr: Repr::Big(Box::new((b.0.abs(), b.1.clone()))),
            },
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DivisionByZero`] if the value is zero.
    pub fn recip(&self) -> Result<Self, NumericError> {
        if self.is_zero() {
            return Err(NumericError::DivisionByZero);
        }
        match &self.repr {
            Repr::Small { num, den } => {
                let mag = *den as i128;
                let n = if *num < 0 { -mag } else { mag };
                Ok(Rational::from_i128_reduced(n, num.unsigned_abs() as u128))
            }
            Repr::Big(b) => Ok(Rational::from_bigints(b.1.clone(), b.0.clone())),
        }
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DivisionByZero`] when raising zero to a
    /// negative power.
    pub fn pow(&self, exp: i32) -> Result<Self, NumericError> {
        if exp < 0 {
            // unsigned_abs, not -exp: negating i32::MIN overflows.
            return Ok(self.recip()?.pow_unsigned(exp.unsigned_abs()));
        }
        Ok(self.pow_unsigned(exp as u32))
    }

    fn pow_unsigned(&self, exp: u32) -> Self {
        if let Repr::Small { num, den } = &self.repr {
            // A reduced fraction stays reduced under powers.
            if let (Some(n), Some(d)) = (num.checked_pow(exp), den.checked_pow(exp)) {
                return Rational::small(n, d);
            }
        }
        let (num, den) = self.to_big_pair();
        Rational::from_bigints(num.pow(exp), den.pow(exp))
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small { num, den } => *num as f64 / *den as f64,
            Repr::Big(b) => {
                // Scale to keep both parts within f64 range for large operands.
                let nb = b.0.bits() as i64;
                let db = b.1.bits() as i64;
                if nb < 900 && db < 900 {
                    b.0.to_f64() / b.1.to_f64()
                } else {
                    let shift = (nb.max(db) - 512).max(0) as u32;
                    let two = BigInt::from(2_i64);
                    let scale = two.pow(shift);
                    let (n, _) = b.0.div_rem(&scale);
                    let (d, _) = b.1.div_rem(&scale);
                    if d.is_zero() {
                        if b.0.is_negative() {
                            f64::NEG_INFINITY
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        n.to_f64() / d.to_f64()
                    }
                }
            }
        }
    }

    /// Builds the exact rational equal to an `f64` (which is always a dyadic
    /// rational), e.g. `0.5 -> 1/2`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Domain`] for NaN or infinite inputs.
    pub fn from_f64(v: f64) -> Result<Self, NumericError> {
        if !v.is_finite() {
            return Err(NumericError::Domain(format!("{v} is not finite")));
        }
        if v == 0.0 {
            return Ok(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1_i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1_u64 << 52) - 1);
        let (mantissa, exp2) = if exp == 0 {
            (frac, -1074_i64)
        } else {
            (frac | (1 << 52), exp - 1075)
        };
        let mut num = BigInt::from(mantissa) * BigInt::from(sign);
        let mut den = BigInt::one();
        let two = BigInt::from(2_i64);
        if exp2 >= 0 {
            num = &num * &two.pow(exp2 as u32);
        } else {
            den = two.pow((-exp2) as u32);
        }
        Ok(Rational::from_bigints(num, den))
    }

    /// Approximates an `f64` by a rational with denominator at most
    /// `max_den`, using a continued-fraction (Stern–Brocot) expansion. This is
    /// how truncated-series coefficients are imported into the exact algebra
    /// engine without dragging in 50-digit dyadic denominators.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Domain`] for NaN or infinite inputs.
    pub fn approximate_f64(v: f64, max_den: u64) -> Result<Self, NumericError> {
        if !v.is_finite() {
            return Err(NumericError::Domain(format!("{v} is not finite")));
        }
        let max_den = max_den.max(1);
        let neg = v < 0.0;
        let mut x = v.abs();
        // Continued fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0_u128, 1_u128, 1_u128, 0_u128);
        for _ in 0..64 {
            let a = x.floor();
            if a >= u64::MAX as f64 {
                break;
            }
            let a_u = a as u128;
            let p2 = a_u.saturating_mul(p1).saturating_add(p0);
            let q2 = a_u.saturating_mul(q1).saturating_add(q0);
            if q2 > max_den as u128 {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Ok(Rational::zero());
        }
        let mut r = Rational::from_bigints(BigInt::from(p1 as u64), BigInt::from(q1 as u64));
        if neg {
            r = -r;
        }
        Ok(r)
    }

    /// Rounds toward negative infinity to the nearest integer.
    pub fn floor(&self) -> BigInt {
        match &self.repr {
            Repr::Small { num, den } => {
                let q = (*num as i128).div_euclid(*den as i128);
                // |q| <= |num| <= 2^63, so the quotient always fits i128->BigInt.
                BigInt::from(q)
            }
            Repr::Big(b) => {
                let (q, r) = b.0.div_rem(&b.1);
                if r.is_negative() {
                    q - BigInt::one()
                } else {
                    q
                }
            }
        }
    }

    /// Returns `true` when the value is stored in the inline `i64`/`u64`
    /// form (exposed for the promotion/demotion boundary tests).
    #[doc(hidden)]
    pub fn is_small_repr(&self) -> bool {
        matches!(self.repr, Repr::Small { .. })
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::integer(v)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        match v.to_i64() {
            Ok(n) => Rational::small(n, 1),
            Err(_) => Rational {
                repr: Repr::Big(Box::new((v, BigInt::one()))),
            },
        }
    }
}

impl FromStr for Rational {
    type Err = NumericError;

    /// Parses `"3"`, `"-3/4"` or a decimal literal such as `"2.5"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(NumericError::DivisionByZero);
            }
            return Ok(Rational::from_bigints(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(NumericError::Parse(s.to_string()));
            }
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10_i64).pow(frac_part.len() as u32);
            let mag = &int.abs() * &scale + frac;
            let num = if negative { -mag } else { mag };
            return Ok(Rational::from_bigints(num, scale));
        }
        let num: BigInt = s.parse()?;
        Ok(Rational::from(num))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small { num, den } => {
                if *den == 1 {
                    write!(f, "{num}")
                } else {
                    write!(f, "{num}/{den}")
                }
            }
            Repr::Big(b) => {
                if b.1.is_one() {
                    write!(f, "{}", b.0)
                } else {
                    write!(f, "{}/{}", b.0, b.1)
                }
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &other.repr)
        {
            // Each cross product fits i128: |i64| * u64 < 2^127.
            return (*a as i128 * *d as i128).cmp(&(*c as i128 * *b as i128));
        }
        let (an, ad) = self.to_big_pair();
        let (bn, bd) = other.to_big_pair();
        (&an * &bd).cmp(&(&bn * &ad))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        match self.repr {
            Repr::Small { num, den } => Rational::from_i128_reduced(-(num as i128), den as u128),
            Repr::Big(b) => Rational::from_bigints(-b.0, b.1),
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

/// Shared slow path for `+`/`-` via the big-integer formulas.
fn add_big(lhs: &Rational, rhs: &Rational, subtract: bool) -> Rational {
    let (an, ad) = lhs.to_big_pair();
    let (bn, bd) = rhs.to_big_pair();
    let cross = &bn * &ad;
    let cross = if subtract { -cross } else { cross };
    Rational::from_bigints(&(&an * &bd) + &cross, &ad * &bd)
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &rhs.repr)
        {
            let lhs = *a as i128 * *d as i128;
            let rhs_term = *c as i128 * *b as i128;
            if let Some(n) = lhs.checked_add(rhs_term) {
                return Rational::from_i128(n, *b as u128 * *d as u128);
            }
        }
        add_big(self, rhs, false)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &rhs.repr)
        {
            let lhs = *a as i128 * *d as i128;
            let rhs_term = *c as i128 * *b as i128;
            if let Some(n) = lhs.checked_sub(rhs_term) {
                return Rational::from_i128(n, *b as u128 * *d as u128);
            }
        }
        add_big(self, rhs, true)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &rhs.repr)
        {
            if *a == 0 || *c == 0 {
                return Rational::zero();
            }
            // Cross-reduce first so the products stay small and the result
            // is already in lowest terms (a⊥b and c⊥d are given).
            let g1 = gcd_u64(a.unsigned_abs(), *d);
            let g2 = gcd_u64(c.unsigned_abs(), *b);
            let n = (*a as i128 / g1 as i128) * (*c as i128 / g2 as i128);
            let den = (*b / g2) as u128 * (*d / g1) as u128;
            return Rational::from_i128_reduced(n, den);
        }
        let (an, ad) = self.to_big_pair();
        let (bn, bd) = rhs.to_big_pair();
        Rational::from_bigints(&an * &bn, &ad * &bd)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero");
        if let (Repr::Small { num: a, den: b }, Repr::Small { num: c, den: d }) =
            (&self.repr, &rhs.repr)
        {
            if *a == 0 {
                return Rational::zero();
            }
            // (a/b) / (c/d) = (a*d) / (b*|c|) with the sign of a*c.
            let g1 = gcd_u64(a.unsigned_abs(), c.unsigned_abs());
            let g2 = gcd_u64(*b, *d);
            let mag = (a.unsigned_abs() / g1) as u128 * (*d / g2) as u128;
            let den = (*b / g2) as u128 * (c.unsigned_abs() / g1) as u128;
            return Rational::from_sign_mag_reduced((*a < 0) != (*c < 0), mag, den);
        }
        let (an, ad) = self.to_big_pair();
        let (bn, bd) = rhs.to_big_pair();
        Rational::from_bigints(&an * &bd, &ad * &bn)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4).to_string(), "-1/2");
        assert_eq!(Rational::new(0, 5), Rational::zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rational::new(3, 7);
        assert_eq!(&a + &Rational::zero(), a);
        assert_eq!(&a * &Rational::one(), a);
        assert_eq!(&a - &a, Rational::zero());
        assert_eq!(&a / &a, Rational::one());
    }

    #[test]
    fn add_sub_mul_div_known_values() {
        assert_eq!(
            Rational::new(1, 2) + Rational::new(1, 3),
            Rational::new(5, 6)
        );
        assert_eq!(
            Rational::new(1, 2) - Rational::new(1, 3),
            Rational::new(1, 6)
        );
        assert_eq!(
            Rational::new(2, 3) * Rational::new(3, 4),
            Rational::new(1, 2)
        );
        assert_eq!(
            Rational::new(2, 3) / Rational::new(4, 3),
            Rational::new(1, 2)
        );
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(Rational::new(2, 3).pow(3).unwrap(), Rational::new(8, 27));
        assert_eq!(Rational::new(2, 3).pow(-2).unwrap(), Rational::new(9, 4));
        assert_eq!(Rational::new(2, 3).pow(0).unwrap(), Rational::one());
        assert!(Rational::zero().recip().is_err());
        assert!(Rational::zero().pow(-1).is_err());
        // i32::MIN has no i32 negation; the exponent must not be negated in
        // place. (±1 keep the checked_pow fast path instant at any exponent.)
        assert_eq!(Rational::one().pow(i32::MIN).unwrap(), Rational::one());
        assert_eq!(
            Rational::integer(-1).pow(i32::MIN).unwrap(),
            Rational::one()
        );
        assert!(Rational::zero().pow(i32::MIN).is_err());
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::integer(5));
        assert_eq!("2.5".parse::<Rational>().unwrap(), Rational::new(5, 2));
        assert_eq!("-0.125".parse::<Rational>().unwrap(), Rational::new(-1, 8));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::integer(-7).to_string(), "-7");
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(7, 7) == Rational::one());
    }

    #[test]
    fn f64_round_trips() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), Rational::new(1, 2));
        assert_eq!(Rational::from_f64(-0.75).unwrap(), Rational::new(-3, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), Rational::integer(3));
        assert!(Rational::from_f64(f64::NAN).is_err());
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn approximate_f64_bounds_denominator() {
        let pi = std::f64::consts::PI;
        let approx = Rational::approximate_f64(pi, 1000).unwrap();
        assert!(approx.denom() <= BigInt::from(1000_i64));
        assert!((approx.to_f64() - pi).abs() < 1e-5);
        // The classic 355/113 convergent appears with a denominator cap of 10^4.
        let a2 = Rational::approximate_f64(pi, 10_000).unwrap();
        assert_eq!(a2, Rational::new(355, 113));
        let neg = Rational::approximate_f64(-0.5, 100).unwrap();
        assert_eq!(neg, Rational::new(-1, 2));
    }

    #[test]
    fn floor() {
        assert_eq!(Rational::new(7, 2).floor().to_i64().unwrap(), 3);
        assert_eq!(Rational::new(-7, 2).floor().to_i64().unwrap(), -4);
        assert_eq!(Rational::integer(5).floor().to_i64().unwrap(), 5);
    }

    // ---- promotion / demotion boundaries of the inline fast path ----

    #[test]
    fn i64_min_stays_inline_and_negation_promotes() {
        let min = Rational::integer(i64::MIN);
        assert!(min.is_small_repr());
        // |i64::MIN| = 2^63 does not fit the inline numerator.
        let promoted = -min.clone();
        assert!(!promoted.is_small_repr());
        assert_eq!(promoted.to_string(), "9223372036854775808");
        assert_eq!(min.abs(), promoted);
        // Negating back demotes to the inline form and round-trips exactly.
        let back = -promoted;
        assert!(back.is_small_repr());
        assert_eq!(back, min);
    }

    #[test]
    fn overflowing_arithmetic_promotes_and_demotes() {
        let big = Rational::integer(i64::MAX);
        let sum = &big + &big;
        assert!(!sum.is_small_repr());
        assert_eq!(sum.to_string(), "18446744073709551614");
        // Dividing back demotes.
        let half = &sum / &Rational::integer(2);
        assert!(half.is_small_repr());
        assert_eq!(half, big);
        // Denominator overflow: 1/2^63 * 1/4 needs a 2^65 denominator.
        let tiny = &Rational::new(1, i64::MIN)
            .abs()
            .recip()
            .unwrap()
            .recip()
            .unwrap();
        let quarter = Rational::new(1, 4);
        let product = tiny * &quarter;
        assert!(!product.is_small_repr());
        assert_eq!(product.to_string(), "1/36893488147419103232");
        let restored = &product * &Rational::integer(1 << 20);
        assert!(restored.is_small_repr());
        assert_eq!(restored, Rational::new(1, 1 << 45));
    }

    #[test]
    fn gcd_at_the_overflow_edge() {
        // i64::MIN / i64::MIN reduces to 1 without overflowing |i64::MIN|.
        assert_eq!(Rational::new(i64::MIN, i64::MIN), Rational::one());
        // i64::MIN / -2 must negate 2^62, which fits.
        let r = Rational::new(i64::MIN, -2);
        assert!(r.is_small_repr());
        assert_eq!(r, Rational::integer(1 << 62));
        // A denominator of i64::MIN magnitude: sign fix pushes 2^63 into u64.
        let d = Rational::new(3, i64::MIN);
        assert!(d.is_small_repr());
        assert_eq!(d.to_string(), "-3/9223372036854775808");
        // recip of i64::MIN: the magnitude 2^63 moves into the u64
        // denominator and the numerator becomes -1, still inline.
        let rec = Rational::integer(i64::MIN).recip().unwrap();
        assert!(rec.is_small_repr());
        assert_eq!(rec, Rational::new(1, i64::MIN));
        assert_eq!(rec.to_string(), "-1/9223372036854775808");
    }

    #[test]
    fn i128_min_cross_product_sum_does_not_overflow() {
        // Regression: the small-path sum of these two values is exactly
        // -2^127 (i128::MIN) with an odd denominator, so reduction leaves a
        // magnitude of 2^127 — which has no i128 negation. The
        // sign/magnitude builder must promote instead of panicking.
        let a = Rational::integer(i64::MIN);
        let b = Rational::from_bigints(BigInt::from(i64::MIN), BigInt::from(u64::MAX));
        let sum = &a + &b;
        assert!(!sum.is_small_repr());
        // Check the exact value against the pure-BigInt formula.
        let expected = Rational::from_bigints(
            &(&BigInt::from(i64::MIN) * &BigInt::from(u64::MAX)) + &BigInt::from(i64::MIN),
            BigInt::from(u64::MAX),
        );
        assert_eq!(sum, expected);
        // The symmetric subtraction path hits the same boundary.
        let diff = &a - &(-b);
        assert_eq!(diff, expected);
    }

    #[test]
    fn equality_and_hash_are_representation_independent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // The same value reached through promotion+demotion and built directly
        // must be identical (the canonical-representation invariant).
        let via_big = &(&Rational::integer(i64::MAX) + &Rational::one()) - &Rational::one();
        let direct = Rational::integer(i64::MAX);
        assert!(via_big.is_small_repr());
        assert_eq!(via_big, direct);
        let hash = |r: &Rational| {
            let mut h = DefaultHasher::new();
            r.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&via_big), hash(&direct));
    }

    #[test]
    fn big_value_arithmetic_matches_bigint_formulas() {
        let a = Rational::from_bigints(
            "123456789012345678901234567890".parse().unwrap(),
            "9876543210987654321".parse().unwrap(),
        );
        assert!(!a.is_small_repr());
        let b = Rational::new(1, 3);
        assert_eq!((&a - &a), Rational::zero());
        assert_eq!(&(&a * &b) * &Rational::integer(3), a);
        assert_eq!(&(&a + &b) - &b, a);
        assert_eq!(&a / &a, Rational::one());
        assert!(a > b);
    }

    proptest! {
        #[test]
        fn prop_field_axioms(an in -1000_i64..1000, ad in 1_i64..50,
                             bn in -1000_i64..1000, bd in 1_i64..50,
                             cn in -1000_i64..1000, cd in 1_i64..50) {
            let a = Rational::new(an, ad);
            let b = Rational::new(bn, bd);
            let c = Rational::new(cn, cd);
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn prop_to_f64_matches_float_division(n in -10_000_i64..10_000, d in 1_i64..10_000) {
            let r = Rational::new(n, d);
            let expected = n as f64 / d as f64;
            prop_assert!((r.to_f64() - expected).abs() <= 1e-12 * expected.abs().max(1.0));
        }

        #[test]
        fn prop_from_f64_exact(v in -1.0e6_f64..1.0e6) {
            let r = Rational::from_f64(v).unwrap();
            prop_assert_eq!(r.to_f64(), v);
        }

        /// Differential test of the inline fast path against the pure
        /// [`BigInt`]-pair formulas, driven across the `i64` boundary so both
        /// the checked fast path and the promotion fallback are exercised.
        #[test]
        fn prop_fast_path_matches_bigint_reference(
            an in any::<i64>(), ad in any::<i64>(),
            bn in any::<i64>(), bd in any::<i64>(),
        ) {
            prop_assume!(ad != 0 && bd != 0);
            let a = Rational::new(an, ad);
            let b = Rational::new(bn, bd);
            let ref_pair = |r: &Rational| (r.numer(), r.denom());
            let via_big = |num: BigInt, den: BigInt| Rational::from_bigints(num, den);
            let (p, q) = ref_pair(&a);
            let (r, s) = ref_pair(&b);
            prop_assert_eq!(&a + &b, via_big(&(&p * &s) + &(&r * &q), &q * &s));
            prop_assert_eq!(&a - &b, via_big(&(&p * &s) - &(&r * &q), &q * &s));
            prop_assert_eq!(&a * &b, via_big(&p * &r, &q * &s));
            if !b.is_zero() {
                prop_assert_eq!(&a / &b, via_big(&p * &s, &q * &r));
            }
            prop_assert_eq!(a.cmp(&b), (&p * &s).cmp(&(&r * &q)));
        }
    }
}
