//! Error types for the numeric substrate.

use std::fmt;

/// Errors produced by numeric conversions and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumericError {
    /// A string could not be parsed as a number.
    Parse(String),
    /// Division by zero was attempted.
    DivisionByZero,
    /// A value does not fit in the requested target representation.
    Overflow(String),
    /// An invalid Q-format was requested (e.g. zero total bits).
    InvalidFormat(String),
    /// A function was evaluated outside its domain (e.g. `ln` of a
    /// non-positive number).
    Domain(String),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::Parse(s) => write!(f, "invalid numeric literal: {s}"),
            NumericError::DivisionByZero => write!(f, "division by zero"),
            NumericError::Overflow(s) => write!(f, "value does not fit: {s}"),
            NumericError::InvalidFormat(s) => write!(f, "invalid fixed-point format: {s}"),
            NumericError::Domain(s) => write!(f, "argument outside function domain: {s}"),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            NumericError::Parse("abc".into()).to_string(),
            NumericError::DivisionByZero.to_string(),
            NumericError::Overflow("x".into()).to_string(),
            NumericError::InvalidFormat("q0.0".into()).to_string(),
            NumericError::Domain("ln(-1)".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NumericError::DivisionByZero);
        assert!(e.to_string().contains("division"));
    }
}
