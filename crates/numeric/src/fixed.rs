//! Q-format fixed-point arithmetic.
//!
//! The StrongARM SA-1110 of the Badge4 has no floating-point unit, so the
//! paper's in-house ("IH") library replaces every floating-point operation with
//! fixed point. [`Fixed`] models a signed fixed-point value with a runtime
//! [`QFormat`] (integer bits, fractional bits) on top of an `i64` accumulator,
//! with saturation and round-to-nearest, matching the behaviour of typical
//! hand-written embedded fixed-point kernels.
//!
//! ```
//! use symmap_numeric::fixed::{Fixed, QFormat};
//!
//! let q15 = QFormat::Q15;
//! let a = Fixed::from_f64(0.5, q15);
//! let b = Fixed::from_f64(0.25, q15);
//! assert!((a.mul(b).to_f64() - 0.125).abs() < 1e-4);
//! ```

// lint:allow-file(D3): fixed-point error analysis quantifies float/fixed
// rounding — floats are its subject matter, not a leak into exact paths.
use std::fmt;

use crate::error::NumericError;

/// A fixed-point format `Qm.n`: `m` integer bits (excluding sign) and `n`
/// fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Q0.15: the classic 16-bit audio sample format.
    pub const Q15: QFormat = QFormat {
        int_bits: 0,
        frac_bits: 15,
    };
    /// Q0.31: 32-bit high-precision audio format (used by IPP-style kernels).
    pub const Q31: QFormat = QFormat {
        int_bits: 0,
        frac_bits: 31,
    };
    /// Q16.15: a general-purpose 32-bit format with headroom for intermediate sums.
    pub const Q16_15: QFormat = QFormat {
        int_bits: 16,
        frac_bits: 15,
    };
    /// Q8.23: format used by the in-house IMDCT of the reproduction.
    pub const Q8_23: QFormat = QFormat {
        int_bits: 8,
        frac_bits: 23,
    };

    /// Creates a new format with `int_bits` integer and `frac_bits` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidFormat`] if the total width (including the
    /// sign bit) exceeds 63 bits or if `frac_bits` is zero.
    pub fn new(int_bits: u8, frac_bits: u8) -> Result<Self, NumericError> {
        if frac_bits == 0 || int_bits as u32 + frac_bits as u32 > 62 {
            return Err(NumericError::InvalidFormat(format!(
                "Q{int_bits}.{frac_bits}"
            )));
        }
        Ok(QFormat {
            int_bits,
            frac_bits,
        })
    }

    /// Number of integer bits (excluding the sign bit).
    pub fn int_bits(&self) -> u8 {
        self.int_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(&self) -> i64 {
        1_i64 << self.frac_bits
    }

    /// Largest representable value.
    pub fn max_value(&self) -> i64 {
        (1_i64 << (self.int_bits as u32 + self.frac_bits as u32)) - 1
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> i64 {
        -(1_i64 << (self.int_bits as u32 + self.frac_bits as u32))
    }

    /// Quantization step in real units.
    pub fn resolution(&self) -> f64 {
        1.0 / self.scale() as f64
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

/// A signed fixed-point number in a given [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Zero in the given format.
    pub fn zero(format: QFormat) -> Self {
        Fixed { raw: 0, format }
    }

    /// One in the given format (saturates if the format has no integer bits).
    pub fn one(format: QFormat) -> Self {
        Fixed::from_f64(1.0, format)
    }

    /// Converts a real value into fixed point with round-to-nearest and
    /// saturation.
    pub fn from_f64(v: f64, format: QFormat) -> Self {
        let scaled = (v * format.scale() as f64).round();
        let raw = if scaled.is_nan() {
            0
        } else if scaled >= format.max_value() as f64 {
            format.max_value()
        } else if scaled <= format.min_value() as f64 {
            format.min_value()
        } else {
            scaled as i64
        };
        Fixed { raw, format }
    }

    /// Builds a value directly from its raw integer representation, saturating
    /// to the format's range.
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        Fixed {
            raw: raw.clamp(format.min_value(), format.max_value()),
            format,
        }
    }

    /// The raw scaled-integer representation.
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format of this value.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Converts back to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 / self.format.scale() as f64
    }

    /// Saturating fixed-point addition. Both operands must share a format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    // add/sub/mul/div deliberately shadow the std ops trait names: they
    // format-check and saturate, and div returns a Result, none of which the
    // trait signatures express. neg saturates i64::MIN. Same allow on each.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed-point format mismatch");
        Fixed::from_raw(self.raw.saturating_add(rhs.raw), self.format)
    }

    /// Saturating fixed-point subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed-point format mismatch");
        Fixed::from_raw(self.raw.saturating_sub(rhs.raw), self.format)
    }

    /// Fixed-point multiplication with a widened intermediate product and
    /// round-to-nearest, as a MAC unit would compute it.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Fixed) -> Fixed {
        assert_eq!(self.format, rhs.format, "fixed-point format mismatch");
        let wide = self.raw as i128 * rhs.raw as i128;
        let half = 1_i128 << (self.format.frac_bits - 1);
        let rounded = (wide + half) >> self.format.frac_bits;
        let clamped = rounded.clamp(
            self.format.min_value() as i128,
            self.format.max_value() as i128,
        );
        Fixed {
            raw: clamped as i64,
            format: self.format,
        }
    }

    /// Fixed-point division with a widened intermediate dividend.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DivisionByZero`] when `rhs` is zero.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Fixed) -> Result<Fixed, NumericError> {
        assert_eq!(self.format, rhs.format, "fixed-point format mismatch");
        if rhs.raw == 0 {
            return Err(NumericError::DivisionByZero);
        }
        let wide = (self.raw as i128) << self.format.frac_bits;
        let q = wide / rhs.raw as i128;
        let clamped = q.clamp(
            self.format.min_value() as i128,
            self.format.max_value() as i128,
        );
        Ok(Fixed {
            raw: clamped as i64,
            format: self.format,
        })
    }

    /// Negation (saturating at the most negative value).
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Fixed {
        Fixed::from_raw(self.raw.saturating_neg(), self.format)
    }

    /// Converts to another format, shifting the raw representation and
    /// saturating.
    pub fn convert(self, target: QFormat) -> Fixed {
        let diff = target.frac_bits as i32 - self.format.frac_bits as i32;
        let raw = if diff >= 0 {
            (self.raw as i128) << diff
        } else {
            let shift = (-diff) as u32;
            let half = 1_i128 << (shift - 1);
            ((self.raw as i128) + half) >> shift
        };
        let clamped = raw.clamp(target.min_value() as i128, target.max_value() as i128);
        Fixed {
            raw: clamped as i64,
            format: target,
        }
    }

    /// Absolute quantization error against a reference real value.
    pub fn error_against(&self, reference: f64) -> f64 {
        (self.to_f64() - reference).abs()
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

/// Computes the root-mean-square error between a fixed-point rendering of
/// `values` and the original real values, the metric used by the MPEG
/// compliance test to accept or reject an optimized decoder.
pub fn quantization_rms(values: &[f64], format: QFormat) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values
        .iter()
        .map(|&v| {
            let e = Fixed::from_f64(v, format).to_f64() - v;
            e * e
        })
        .sum();
    (sum / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn format_construction_limits() {
        assert!(QFormat::new(0, 15).is_ok());
        assert!(QFormat::new(30, 31).is_ok());
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(40, 31).is_err());
        assert_eq!(QFormat::Q15.to_string(), "Q0.15");
    }

    #[test]
    fn round_trip_small_values() {
        let fmt = QFormat::Q16_15;
        for v in [-3.5, -0.25, 0.0, 0.125, 1.0, 100.75] {
            let f = Fixed::from_f64(v, fmt);
            assert!((f.to_f64() - v).abs() <= fmt.resolution());
        }
    }

    #[test]
    fn saturation_at_extremes() {
        let fmt = QFormat::Q15;
        assert_eq!(Fixed::from_f64(10.0, fmt).raw(), fmt.max_value());
        assert_eq!(Fixed::from_f64(-10.0, fmt).raw(), fmt.min_value());
        let max = Fixed::from_raw(fmt.max_value(), fmt);
        assert_eq!(max.add(max).raw(), fmt.max_value());
    }

    #[test]
    fn multiplication_accuracy() {
        let fmt = QFormat::Q31;
        let a = Fixed::from_f64(std::f64::consts::FRAC_1_SQRT_2, fmt);
        let b = Fixed::from_f64(std::f64::consts::FRAC_1_SQRT_2, fmt);
        assert!((a.mul(b).to_f64() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn division() {
        let fmt = QFormat::Q16_15;
        let a = Fixed::from_f64(3.0, fmt);
        let b = Fixed::from_f64(4.0, fmt);
        assert!((a.div(b).unwrap().to_f64() - 0.75).abs() < 1e-3);
        assert!(a.div(Fixed::zero(fmt)).is_err());
    }

    #[test]
    fn conversion_between_formats() {
        let v = Fixed::from_f64(0.333, QFormat::Q31);
        let down = v.convert(QFormat::Q15);
        assert!((down.to_f64() - 0.333).abs() < 1e-4);
        let up = down.convert(QFormat::Q31);
        assert!((up.to_f64() - 0.333).abs() < 1e-4);
    }

    #[test]
    fn neg_saturates() {
        let fmt = QFormat::Q15;
        let min = Fixed::from_raw(fmt.min_value(), fmt);
        assert_eq!(min.neg().raw(), fmt.max_value());
        assert_eq!(Fixed::from_f64(0.5, fmt).neg().to_f64(), -0.5);
    }

    #[test]
    fn quantization_rms_decreases_with_precision() {
        let samples: Vec<f64> = (0..1000)
            .map(|i| ((i as f64) * 0.013).sin() * 0.9)
            .collect();
        let coarse = quantization_rms(&samples, QFormat::Q15);
        let fine = quantization_rms(&samples, QFormat::Q31);
        assert!(fine < coarse);
        assert!(coarse < 1e-4);
        assert_eq!(quantization_rms(&[], QFormat::Q15), 0.0);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn mixed_format_add_panics() {
        let a = Fixed::from_f64(0.5, QFormat::Q15);
        let b = Fixed::from_f64(0.5, QFormat::Q31);
        let _ = a.add(b);
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(v in -0.99_f64..0.99) {
            let f = Fixed::from_f64(v, QFormat::Q15);
            prop_assert!((f.to_f64() - v).abs() <= QFormat::Q15.resolution());
        }

        #[test]
        fn prop_add_matches_real(a in -0.4_f64..0.4, b in -0.4_f64..0.4) {
            let fmt = QFormat::Q31;
            let fa = Fixed::from_f64(a, fmt);
            let fb = Fixed::from_f64(b, fmt);
            prop_assert!((fa.add(fb).to_f64() - (a + b)).abs() < 4.0 * fmt.resolution());
        }

        #[test]
        fn prop_mul_matches_real(a in -0.9_f64..0.9, b in -0.9_f64..0.9) {
            let fmt = QFormat::Q31;
            let fa = Fixed::from_f64(a, fmt);
            let fb = Fixed::from_f64(b, fmt);
            prop_assert!((fa.mul(fb).to_f64() - a * b).abs() < 1e-6);
        }

        #[test]
        fn prop_raw_stays_in_range(v in -1000.0_f64..1000.0) {
            let fmt = QFormat::Q16_15;
            let f = Fixed::from_f64(v, fmt);
            prop_assert!(f.raw() >= fmt.min_value() && f.raw() <= fmt.max_value());
        }
    }
}
