//! Truncated Taylor and Chebyshev series.
//!
//! Target-code identification (§3.2 of the paper) turns *nonlinear* functions
//! (`exp`, `log`, trigonometric calls, `pow(x, 4/3)` in the MP3 dequantizer)
//! into polynomials by substituting a truncated Taylor or Chebyshev expansion.
//! The mapper then treats the approximation like any other polynomial while the
//! accuracy bookkeeping carries the truncation error bound.
//!
//! ```
//! use symmap_numeric::series::{taylor, Function};
//!
//! // 6-term Maclaurin series of exp(x); coefficient of x^3 is 1/6.
//! let coeffs = taylor(Function::Exp, 6);
//! assert!((coeffs[3] - 1.0 / 6.0).abs() < 1e-12);
//! ```

// lint:allow-file(D3): series coefficients are exact Rational; the f64
// helpers exist to validate truncation error against reference values.
use crate::rational::Rational;

/// Elementary functions for which the identification step can synthesize a
/// polynomial approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Function {
    /// `exp(x)` expanded around 0.
    Exp,
    /// `ln(1 + x)` expanded around 0.
    Ln1p,
    /// `sin(x)` expanded around 0.
    Sin,
    /// `cos(x)` expanded around 0.
    Cos,
    /// `atan(x)` expanded around 0.
    Atan,
    /// `1/(1 + x)` expanded around 0.
    Recip1p,
    /// `sqrt(1 + x)` expanded around 0.
    Sqrt1p,
    /// `(1 + x)^(4/3)`, the MP3 requantization exponent, expanded around 0.
    Pow43,
}

impl Function {
    /// Human-readable name used in reports and library catalogs.
    pub fn name(&self) -> &'static str {
        match self {
            Function::Exp => "exp",
            Function::Ln1p => "ln1p",
            Function::Sin => "sin",
            Function::Cos => "cos",
            Function::Atan => "atan",
            Function::Recip1p => "recip1p",
            Function::Sqrt1p => "sqrt1p",
            Function::Pow43 => "pow43",
        }
    }

    /// Evaluates the exact function (used as the accuracy reference).
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            Function::Exp => x.exp(),
            Function::Ln1p => x.ln_1p(),
            Function::Sin => x.sin(),
            Function::Cos => x.cos(),
            Function::Atan => x.atan(),
            Function::Recip1p => 1.0 / (1.0 + x),
            Function::Sqrt1p => (1.0 + x).sqrt(),
            Function::Pow43 => (1.0 + x).powf(4.0 / 3.0),
        }
    }
}

/// Returns the first `terms` Maclaurin coefficients `c0..c_{terms-1}` of the
/// given function, so that `f(x) ≈ Σ c_k x^k`.
pub fn taylor(f: Function, terms: usize) -> Vec<f64> {
    let mut c = vec![0.0_f64; terms];
    match f {
        Function::Exp => {
            let mut fact = 1.0;
            for (k, ck) in c.iter_mut().enumerate() {
                if k > 0 {
                    fact *= k as f64;
                }
                *ck = 1.0 / fact;
            }
        }
        Function::Ln1p => {
            for (k, ck) in c.iter_mut().enumerate().skip(1) {
                *ck = if k % 2 == 1 { 1.0 } else { -1.0 } / k as f64;
            }
        }
        Function::Sin => {
            let mut fact = 1.0;
            for (k, ck) in c.iter_mut().enumerate().take(terms) {
                if k > 0 {
                    fact *= k as f64;
                }
                if k % 2 == 1 {
                    *ck = if (k / 2) % 2 == 0 { 1.0 } else { -1.0 } / fact;
                }
            }
        }
        Function::Cos => {
            let mut fact = 1.0;
            for (k, ck) in c.iter_mut().enumerate().take(terms) {
                if k > 0 {
                    fact *= k as f64;
                }
                if k % 2 == 0 {
                    *ck = if (k / 2) % 2 == 0 { 1.0 } else { -1.0 } / fact;
                }
            }
        }
        Function::Atan => {
            for k in (1..terms).step_by(2) {
                c[k] = if (k / 2) % 2 == 0 { 1.0 } else { -1.0 } / k as f64;
            }
        }
        Function::Recip1p => {
            for (k, ck) in c.iter_mut().enumerate() {
                *ck = if k % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        Function::Sqrt1p => {
            // Binomial series with alpha = 1/2.
            binomial_series(&mut c, 0.5);
        }
        Function::Pow43 => {
            binomial_series(&mut c, 4.0 / 3.0);
        }
    }
    c
}

fn binomial_series(c: &mut [f64], alpha: f64) {
    let mut coeff = 1.0;
    for (k, ck) in c.iter_mut().enumerate() {
        if k > 0 {
            coeff *= (alpha - (k as f64 - 1.0)) / k as f64;
        }
        *ck = coeff;
    }
}

/// Returns the Taylor coefficients as exact rationals (continued-fraction
/// approximation with denominators bounded by `max_den`), ready to be used as
/// polynomial coefficients in the algebra engine.
pub fn taylor_rational(f: Function, terms: usize, max_den: u64) -> Vec<Rational> {
    taylor(f, terms)
        .into_iter()
        .map(|c| Rational::approximate_f64(c, max_den).unwrap_or_else(|_| Rational::zero()))
        .collect()
}

/// Evaluates a dense univariate polynomial `Σ c_k x^k` by Horner's rule.
pub fn eval_poly(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Computes the degree-`degree` Chebyshev approximation of `f` on `[a, b]`
/// and returns the coefficients in the *monomial* basis (so the result can be
/// used directly as a polynomial representation).
///
/// # Panics
///
/// Panics if `a >= b`.
pub fn chebyshev_monomial(f: Function, a: f64, b: f64, degree: usize) -> Vec<f64> {
    assert!(a < b, "invalid interval");
    let n = degree + 1;
    // Chebyshev coefficients via cosine-node quadrature.
    let mut cheb = vec![0.0_f64; n];
    let nodes: Vec<f64> = (0..n)
        .map(|k| (std::f64::consts::PI * (k as f64 + 0.5) / n as f64).cos())
        .collect();
    let samples: Vec<f64> = nodes
        .iter()
        .map(|&t| f.eval(0.5 * (b - a) * t + 0.5 * (b + a)))
        .collect();
    for (j, cj) in cheb.iter_mut().enumerate() {
        let mut s = 0.0;
        for (k, &fk) in samples.iter().enumerate() {
            s += fk * (std::f64::consts::PI * j as f64 * (k as f64 + 0.5) / n as f64).cos();
        }
        *cj = 2.0 * s / n as f64;
    }
    cheb[0] *= 0.5;
    // Convert from the Chebyshev basis in t to the monomial basis in t, then
    // substitute t = (2x - (a+b)) / (b-a).
    let mono_t = chebyshev_to_monomial(&cheb);
    substitute_affine(&mono_t, 2.0 / (b - a), -(a + b) / (b - a))
}

/// Converts coefficients in the Chebyshev basis to the monomial basis.
fn chebyshev_to_monomial(cheb: &[f64]) -> Vec<f64> {
    let n = cheb.len();
    // t_polys[k] = monomial coefficients of T_k.
    let mut t_prev = vec![1.0];
    let mut t_cur = vec![0.0, 1.0];
    let mut out = vec![0.0; n];
    for (k, &ck) in cheb.iter().enumerate() {
        let tk: &[f64] = match k {
            0 => &t_prev,
            1 => &t_cur,
            _ => {
                // T_k = 2x T_{k-1} - T_{k-2}
                let mut next = vec![0.0; t_cur.len() + 1];
                for (i, &c) in t_cur.iter().enumerate() {
                    next[i + 1] += 2.0 * c;
                }
                for (i, &c) in t_prev.iter().enumerate() {
                    next[i] -= c;
                }
                t_prev = std::mem::replace(&mut t_cur, next);
                &t_cur
            }
        };
        for (i, &c) in tk.iter().enumerate() {
            out[i] += ck * c;
        }
    }
    out
}

/// Given `p(t) = Σ c_k t^k`, returns the coefficients of `p(s*x + o)`.
fn substitute_affine(coeffs: &[f64], s: f64, o: f64) -> Vec<f64> {
    let n = coeffs.len();
    let mut out = vec![0.0_f64; n];
    // (s*x + o)^k expanded by repeated multiplication.
    let mut power = vec![1.0_f64];
    for (k, &ck) in coeffs.iter().enumerate() {
        for (i, &p) in power.iter().enumerate() {
            out[i] += ck * p;
        }
        if k + 1 < n {
            let mut next = vec![0.0_f64; power.len() + 1];
            for (i, &p) in power.iter().enumerate() {
                next[i] += p * o;
                next[i + 1] += p * s;
            }
            power = next;
        }
    }
    out
}

/// Maximum absolute error of a polynomial approximation against the exact
/// function, sampled at `samples` evenly spaced points of `[a, b]`.
pub fn max_error(f: Function, coeffs: &[f64], a: f64, b: f64, samples: usize) -> f64 {
    let samples = samples.max(2);
    (0..samples)
        .map(|i| {
            let x = a + (b - a) * i as f64 / (samples - 1) as f64;
            (f.eval(x) - eval_poly(coeffs, x)).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exp_taylor_known_coefficients() {
        let c = taylor(Function::Exp, 6);
        assert_eq!(c[0], 1.0);
        assert_eq!(c[1], 1.0);
        assert!((c[2] - 0.5).abs() < 1e-15);
        assert!((c[5] - 1.0 / 120.0).abs() < 1e-15);
    }

    #[test]
    fn ln1p_alternating_harmonic() {
        let c = taylor(Function::Ln1p, 5);
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], 1.0);
        assert_eq!(c[2], -0.5);
        assert!((c[3] - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(c[4], -0.25);
    }

    #[test]
    fn sin_cos_parity() {
        let s = taylor(Function::Sin, 8);
        let c = taylor(Function::Cos, 8);
        for k in (0..8).step_by(2) {
            assert_eq!(s[k], 0.0);
        }
        for k in (1..8).step_by(2) {
            assert_eq!(c[k], 0.0);
        }
        assert!((s[1] - 1.0).abs() < 1e-15);
        assert!((s[3] + 1.0 / 6.0).abs() < 1e-15);
        assert!((c[2] + 0.5).abs() < 1e-15);
    }

    #[test]
    fn taylor_approximates_near_zero() {
        for f in [
            Function::Exp,
            Function::Ln1p,
            Function::Sin,
            Function::Cos,
            Function::Atan,
            Function::Recip1p,
            Function::Sqrt1p,
            Function::Pow43,
        ] {
            let c = taylor(f, 12);
            let err = max_error(f, &c, -0.3, 0.3, 101);
            assert!(err < 1e-6, "{:?} error {err}", f);
        }
    }

    #[test]
    fn chebyshev_beats_taylor_on_wide_interval() {
        let deg = 8;
        let taylor_c = taylor(Function::Exp, deg + 1);
        let cheb_c = chebyshev_monomial(Function::Exp, -1.0, 1.0, deg);
        let te = max_error(Function::Exp, &taylor_c, -1.0, 1.0, 201);
        let ce = max_error(Function::Exp, &cheb_c, -1.0, 1.0, 201);
        assert!(ce < te, "chebyshev {ce} should beat taylor {te}");
        assert!(ce < 1e-7);
    }

    #[test]
    fn chebyshev_on_shifted_interval() {
        let c = chebyshev_monomial(Function::Ln1p, 0.0, 2.0, 10);
        let err = max_error(Function::Ln1p, &c, 0.0, 2.0, 301);
        assert!(err < 1e-4, "error {err}");
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn chebyshev_invalid_interval_panics() {
        let _ = chebyshev_monomial(Function::Exp, 1.0, 1.0, 3);
    }

    #[test]
    fn rational_coefficients_are_close() {
        let exact = taylor(Function::Exp, 8);
        let rats = taylor_rational(Function::Exp, 8, 1_000_000);
        for (e, r) in exact.iter().zip(&rats) {
            assert!((e - r.to_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn pow43_matches_dequantizer_exponent() {
        // The MP3 dequantizer computes |x|^(4/3); near x = 1 the series in
        // (1 + t) must track the exact power function.
        let c = taylor(Function::Pow43, 14);
        for t in [-0.2, -0.1, 0.0, 0.1, 0.2] {
            let exact = (1.0 + t_f(t)).powf(4.0 / 3.0);
            assert!((eval_poly(&c, t_f(t)) - exact).abs() < 1e-8);
        }
        fn t_f(t: f64) -> f64 {
            t
        }
    }

    #[test]
    fn eval_poly_horner() {
        // 1 + 2x + 3x^2 at x = 2 is 17.
        assert_eq!(eval_poly(&[1.0, 2.0, 3.0], 2.0), 17.0);
        assert_eq!(eval_poly(&[], 3.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_taylor_error_shrinks_with_terms(x in -0.25_f64..0.25) {
            let short = taylor(Function::Exp, 3);
            let long = taylor(Function::Exp, 10);
            let es = (eval_poly(&short, x) - x.exp()).abs();
            let el = (eval_poly(&long, x) - x.exp()).abs();
            prop_assert!(el <= es + 1e-12);
        }

        #[test]
        fn prop_chebyshev_error_bounded(deg in 4_usize..10) {
            let c = chebyshev_monomial(Function::Sin, -1.0, 1.0, deg);
            prop_assert!(max_error(Function::Sin, &c, -1.0, 1.0, 101) < 1e-2);
        }
    }
}
