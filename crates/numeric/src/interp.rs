//! Exact polynomial interpolation.
//!
//! The paper (§3.2, following Smith & De Micheli \[22\]) recovers polynomial
//! representations of procedures that perform *bit manipulations or Boolean
//! functions* by interpolation: sample the word-level function on enough
//! points and reconstruct the unique low-degree polynomial through them. This
//! module provides exact Newton interpolation over [`Rational`] and a helper
//! that identifies the minimal-degree polynomial consistent with a sampled
//! integer function.
//!
//! ```
//! use symmap_numeric::interp::newton_interpolate;
//! use symmap_numeric::rational::Rational;
//!
//! // Points of f(x) = x^2 + 1.
//! let pts: Vec<(Rational, Rational)> = (0..4)
//!     .map(|x| (Rational::integer(x), Rational::integer(x * x + 1)))
//!     .collect();
//! let coeffs = newton_interpolate(&pts).unwrap();
//! assert_eq!(coeffs, vec![
//!     Rational::integer(1),
//!     Rational::integer(0),
//!     Rational::integer(1),
//! ]);
//! ```

use crate::error::NumericError;
use crate::rational::Rational;

/// Interpolates the unique polynomial of degree `< points.len()` through the
/// given `(x, y)` pairs and returns its monomial coefficients
/// `[c0, c1, ...]` (constant term first), trimmed of trailing zeros.
///
/// # Errors
///
/// Returns [`NumericError::Domain`] if two points share an `x` coordinate or
/// the input is empty.
pub fn newton_interpolate(points: &[(Rational, Rational)]) -> Result<Vec<Rational>, NumericError> {
    if points.is_empty() {
        return Err(NumericError::Domain("no interpolation points".into()));
    }
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if points[i].0 == points[j].0 {
                return Err(NumericError::Domain(format!(
                    "duplicate interpolation abscissa {}",
                    points[i].0
                )));
            }
        }
    }
    let n = points.len();
    // Divided differences.
    let mut table: Vec<Rational> = points.iter().map(|(_, y)| y.clone()).collect();
    let mut newton_coeffs = Vec::with_capacity(n);
    newton_coeffs.push(table[0].clone());
    for level in 1..n {
        for i in (level..n).rev() {
            let dx = &points[i].0 - &points[i - level].0;
            table[i] = &(&table[i] - &table[i - 1]) / &dx;
        }
        newton_coeffs.push(table[level].clone());
    }
    // Expand the Newton form Σ a_k Π_{j<k} (x - x_j) into monomial basis.
    let mut coeffs = vec![Rational::zero(); n];
    let mut basis = vec![Rational::one()]; // product polynomial, degree grows
    for (k, a) in newton_coeffs.iter().enumerate() {
        for (i, b) in basis.iter().enumerate() {
            coeffs[i] = &coeffs[i] + &(a * b);
        }
        if k + 1 < n {
            // basis *= (x - x_k)
            let xk = &points[k].0;
            let mut next = vec![Rational::zero(); basis.len() + 1];
            for (i, b) in basis.iter().enumerate() {
                next[i + 1] = &next[i + 1] + b;
                next[i] = &next[i] - &(b * xk);
            }
            basis = next;
        }
    }
    while coeffs.len() > 1 && coeffs.last().is_some_and(Rational::is_zero) {
        coeffs.pop();
    }
    Ok(coeffs)
}

/// Evaluates a dense univariate rational polynomial at `x` (Horner's rule).
pub fn eval_rational_poly(coeffs: &[Rational], x: &Rational) -> Rational {
    coeffs
        .iter()
        .rev()
        .fold(Rational::zero(), |acc, c| &(&acc * x) + c)
}

/// Attempts to identify the minimal-degree polynomial representation of an
/// integer word-level function `f` by sampling it on `0..=max_degree + 1`
/// points and verifying the reconstruction on `verify_points` extra samples.
///
/// Returns `None` when no polynomial of degree at most `max_degree` matches —
/// the signal used by the identification step to fall back to a series
/// approximation or to leave the code block unmapped.
pub fn identify_integer_function(
    f: impl Fn(i64) -> i64,
    max_degree: usize,
    verify_points: usize,
) -> Option<Vec<Rational>> {
    let sample_count = max_degree + 1;
    let points: Vec<(Rational, Rational)> = (0..sample_count as i64)
        .map(|x| (Rational::integer(x), Rational::integer(f(x))))
        .collect();
    let coeffs = newton_interpolate(&points).ok()?;
    if coeffs.len() > max_degree + 1 {
        return None;
    }
    for i in 0..verify_points as i64 {
        let x = sample_count as i64 + i;
        if eval_rational_poly(&coeffs, &Rational::integer(x)) != Rational::integer(f(x)) {
            return None;
        }
    }
    Some(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(v: i64) -> Rational {
        Rational::integer(v)
    }

    #[test]
    fn interpolates_constant() {
        let c = newton_interpolate(&[(r(0), r(7))]).unwrap();
        assert_eq!(c, vec![r(7)]);
    }

    #[test]
    fn interpolates_line() {
        let pts = vec![(r(0), r(1)), (r(2), r(5))];
        let c = newton_interpolate(&pts).unwrap();
        assert_eq!(c, vec![r(1), r(2)]);
    }

    #[test]
    fn interpolates_cubic_with_rational_points() {
        // f(x) = x^3 - x/2 + 1/3
        let f =
            |x: &Rational| &(&(x * x) * x) - &(&(x * &Rational::new(1, 2)) - &Rational::new(1, 3));
        let xs = [r(-2), r(-1), r(0), r(1), r(2)];
        let pts: Vec<_> = xs.iter().map(|x| (x.clone(), f(x))).collect();
        let c = newton_interpolate(&pts).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c[3], r(1));
        assert_eq!(c[1], Rational::new(-1, 2));
        assert_eq!(c[0], Rational::new(1, 3));
    }

    #[test]
    fn rejects_duplicate_abscissae_and_empty_input() {
        assert!(newton_interpolate(&[(r(1), r(2)), (r(1), r(3))]).is_err());
        assert!(newton_interpolate(&[]).is_err());
    }

    #[test]
    fn identify_square_function() {
        let coeffs = identify_integer_function(|x| x * x + 3 * x + 2, 4, 8).unwrap();
        assert_eq!(coeffs, vec![r(2), r(3), r(1)]);
    }

    #[test]
    fn identify_rejects_non_polynomial() {
        // 2^x grows faster than any polynomial of degree <= 5.
        assert!(identify_integer_function(|x| 1_i64 << x.min(40), 5, 10).is_none());
    }

    #[test]
    fn identify_bit_trick_doubling() {
        // x << 1 is the polynomial 2x: the paper's example of a bit
        // manipulation with an exact polynomial model.
        let coeffs = identify_integer_function(|x| x << 1, 3, 6).unwrap();
        assert_eq!(coeffs, vec![r(0), r(2)]);
    }

    #[test]
    fn eval_rational_poly_matches_manual() {
        let coeffs = vec![r(1), r(0), r(2)]; // 1 + 2x^2
        assert_eq!(eval_rational_poly(&coeffs, &r(3)), r(19));
        assert_eq!(eval_rational_poly(&[], &r(3)), Rational::zero());
    }

    proptest! {
        #[test]
        fn prop_interpolation_reproduces_samples(
            coeffs in proptest::collection::vec(-20_i64..20, 1..6),
        ) {
            let poly: Vec<Rational> = coeffs.iter().map(|&c| r(c)).collect();
            let pts: Vec<(Rational, Rational)> = (0..poly.len() as i64)
                .map(|x| (r(x), eval_rational_poly(&poly, &r(x))))
                .collect();
            let rec = newton_interpolate(&pts).unwrap();
            for x in -5_i64..5 {
                prop_assert_eq!(
                    eval_rational_poly(&rec, &r(x)),
                    eval_rational_poly(&poly, &r(x))
                );
            }
        }

        #[test]
        fn prop_identified_degree_le_true_degree(
            a in -9_i64..9, b in -9_i64..9, c in -9_i64..9,
        ) {
            let coeffs = identify_integer_function(move |x| a + b * x + c * x * x, 5, 10).unwrap();
            prop_assert!(coeffs.len() <= 3 || coeffs.iter().skip(3).all(Rational::is_zero));
        }
    }
}
