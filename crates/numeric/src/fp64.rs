//! ℤ/p arithmetic for 62-bit primes, in Montgomery form.
//!
//! The Gröbner engine's dominant remaining cost on hard side-relation ideals
//! is *coefficient growth over ℚ*: exact rational arithmetic blows up on
//! coefficient size, not term count. Production computer-algebra systems
//! avoid this by running the same algorithms over a finite field ℤ/p, where
//! every coefficient is one machine word and every nonzero element is
//! invertible. This module provides that substrate:
//!
//! * [`Fp64`] — a field context for a fixed odd prime `p < 2⁶²`, holding the
//!   precomputed Montgomery constants. Elements are plain `u64` values *in
//!   Montgomery form* (`a·R mod p` with `R = 2⁶⁴`); all arithmetic goes
//!   through the context, mirroring the field-context idiom of symbolica's
//!   `finite_field.rs`.
//! * [`PrimeIterator`] — a deterministic stream of 62-bit primes starting
//!   from the fixed seed candidate [`PRIME_SEED`]. Determinism matters: the
//!   modular prefilter rotates to the next prime when one turns out
//!   *unlucky* for an ideal (it divides a leading coefficient or a
//!   denominator), and the chosen prime must be a pure function of the ideal
//!   so that cached bases are scheduling-independent.
//! * [`is_prime`] — deterministic Miller–Rabin, valid for all `u64`.
//!
//! The `p < 2⁶²` bound is what makes the arithmetic branch-light: sums of
//! two elements fit in `u64` without overflow, and the Montgomery reduction
//! accumulator fits in `u128` with room to spare.
//!
//! ## Example
//!
//! ```
//! use symmap_numeric::fp64::{Fp64, PrimeIterator};
//!
//! let p = PrimeIterator::new().next().unwrap();
//! let field = Fp64::new(p);
//! let a = field.to_montgomery(7);
//! let b = field.inv(a);
//! assert_eq!(field.mul(a, b), field.one());
//! ```

/// First candidate tried by [`PrimeIterator`]: the largest odd number below
/// 2⁶². The iterator walks downward, so the first prime it yields is the
/// largest prime below 2⁶² (4611686018427387847 = 2⁶² − 57).
pub const PRIME_SEED: u64 = (1 << 62) - 1;

/// Floor of the prime band: [`PrimeIterator`] only yields primes in
/// (2⁶¹, 2⁶²), so every prime is a genuine 62-bit value and products of two
/// residues stay comfortably inside `u128`.
const PRIME_FLOOR: u64 = 1 << 61;

/// A finite field ℤ/p for an odd prime `p < 2⁶²`, with Montgomery-form
/// element representation.
///
/// Elements are `u64` values holding `a·R mod p` (`R = 2⁶⁴`). Use
/// [`Fp64::to_montgomery`]/[`Fp64::from_montgomery`] at the boundary and the
/// context methods ([`Fp64::add`], [`Fp64::mul`], [`Fp64::inv`], …) inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fp64 {
    /// The modulus.
    p: u64,
    /// `−p⁻¹ mod 2⁶⁴`, the Montgomery reduction constant.
    p_inv_neg: u64,
    /// `R² mod p = 2¹²⁸ mod p`, used to enter Montgomery form.
    r2: u64,
    /// `R mod p`, the Montgomery form of 1.
    one: u64,
}

impl Fp64 {
    /// Creates the field context for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is even, below 3, or at least 2⁶². (Primality is the
    /// caller's contract — use [`is_prime`] or [`PrimeIterator`]; a composite
    /// odd modulus yields a ring in which [`Fp64::inv`] is unreliable.)
    pub fn new(p: u64) -> Self {
        assert!(
            p >= 3 && p % 2 == 1 && p < (1 << 62),
            "Fp64 requires an odd modulus in [3, 2^62)"
        );
        // Newton–Hensel inversion of p modulo 2⁶⁴: for odd p, `inv = p` is
        // already correct mod 2³ (p·p ≡ 1 mod 8), and each iteration doubles
        // the number of correct low bits: 3 → 6 → 12 → 24 → 48 → 96 ≥ 64.
        let mut inv = p;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(inv)));
        }
        debug_assert_eq!(p.wrapping_mul(inv), 1);
        let one = ((1u128 << 64) % p as u128) as u64;
        let r2 = ((one as u128 * one as u128) % p as u128) as u64;
        Fp64 {
            p,
            p_inv_neg: inv.wrapping_neg(),
            r2,
            one,
        }
    }

    /// The modulus `p`.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The additive identity (zero is `0` in Montgomery form too).
    #[inline]
    pub fn zero(&self) -> u64 {
        0
    }

    /// The multiplicative identity in Montgomery form (`R mod p`).
    #[inline]
    pub fn one(&self) -> u64 {
        self.one
    }

    /// Montgomery reduction: maps `t < p·2⁶⁴` to `t·R⁻¹ mod p`.
    #[inline]
    fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.p_inv_neg);
        // t + m·p ≡ 0 mod 2⁶⁴ by construction of m, and the sum is below
        // p² + p·2⁶⁴ < 2¹²⁴ + 2¹²⁶, so the u128 accumulator cannot overflow
        // and the shifted result is below 2p: one conditional subtraction.
        let t = ((t + m as u128 * self.p as u128) >> 64) as u64;
        if t >= self.p {
            t - self.p
        } else {
            t
        }
    }

    /// Enters Montgomery form: `n mod p` ↦ `n·R mod p`.
    #[inline]
    pub fn to_montgomery(&self, n: u64) -> u64 {
        self.redc((n % self.p) as u128 * self.r2 as u128)
    }

    /// Leaves Montgomery form: `a·R mod p` ↦ `a mod p`.
    #[inline]
    pub fn from_montgomery(&self, a: u64) -> u64 {
        self.redc(a as u128)
    }

    /// Embeds a signed integer (e.g. a rational numerator) into the field,
    /// in Montgomery form.
    #[inline]
    pub fn from_i64(&self, n: i64) -> u64 {
        let mag = self.to_montgomery(n.unsigned_abs());
        if n < 0 {
            self.neg(mag)
        } else {
            mag
        }
    }

    /// Field addition. Safe in `u64` because `p < 2⁶²`.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// Additive inverse.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        if a == 0 {
            0
        } else {
            self.p - a
        }
    }

    /// Field multiplication of two Montgomery-form elements.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(a as u128 * b as u128)
    }

    /// Exponentiation by squaring; `e` is a plain (non-Montgomery) exponent.
    pub fn pow(&self, mut base: u64, mut e: u64) -> u64 {
        let mut acc = self.one;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse by Fermat's little theorem (`a^(p−2)`).
    ///
    /// `a` must be nonzero; `inv(0)` returns 0 (and debug-asserts), which
    /// callers must never rely on.
    #[inline]
    pub fn inv(&self, a: u64) -> u64 {
        debug_assert!(a != 0, "inverse of zero in ℤ/{}", self.p);
        // The identity is its own inverse; skipping the 62-step Fermat
        // ladder here matters because Gröbner bases are kept monic, so the
        // division hot loop's `c / lc(d)` is `c / 1` almost every step.
        if a == self.one {
            return a;
        }
        self.pow(a, self.p - 2)
    }

    /// Field division `a / b` (`b` nonzero).
    #[inline]
    pub fn div(&self, a: u64, b: u64) -> u64 {
        if b == self.one {
            return a;
        }
        self.mul(a, self.inv(b))
    }
}

/// `a·b mod m` without overflow, for any `u64` operands.
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a^e mod m` by squaring, for any `u64` operands.
fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1 % m;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// The witness set {2, 3, …, 37} makes Miller–Rabin *deterministic* for all
/// `n < 2⁶⁴` (Sorenson & Webster 2015), so [`is_prime`] is exact, not
/// probabilistic.
const MILLER_RABIN_WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Deterministic primality test, exact for every `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &sp in &MILLER_RABIN_WITNESSES {
        if n == sp {
            return true;
        }
        if n.is_multiple_of(sp) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &MILLER_RABIN_WITNESSES {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// A deterministic stream of 62-bit primes, largest first.
///
/// Starts at [`PRIME_SEED`] and walks downward by 2, yielding every prime in
/// the open band (2⁶¹, 2⁶²). The sequence is a fixed constant of the crate —
/// the first three primes are `2⁶² − 57`, `2⁶² − 87`, `2⁶² − 117` — so any
/// consumer that "rotates to the next prime" does so identically on every
/// run and every thread.
#[derive(Debug, Clone)]
pub struct PrimeIterator {
    candidate: u64,
}

impl PrimeIterator {
    /// A stream positioned at the seed candidate.
    pub fn new() -> Self {
        PrimeIterator {
            candidate: PRIME_SEED,
        }
    }
}

impl Default for PrimeIterator {
    fn default() -> Self {
        Self::new()
    }
}

impl Iterator for PrimeIterator {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.candidate > PRIME_FLOOR {
            let c = self.candidate;
            self.candidate -= 2;
            if is_prime(c) {
                return Some(c);
            }
        }
        // ~5·10¹⁶ primes live in the band; exhaustion is unreachable in
        // practice but the contract stays honest.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference arithmetic in plain (non-Montgomery) residues.
    fn naive_mul(a: u64, b: u64, p: u64) -> u64 {
        mul_mod(a, b, p)
    }

    #[test]
    fn small_primes_are_recognised() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 9, 91, 561, 6601, 62745]; // incl. Carmichael numbers
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn prime_iterator_is_deterministic_and_62_bit() {
        let first: Vec<u64> = PrimeIterator::new().take(3).collect();
        assert_eq!(first, vec![(1 << 62) - 57, (1 << 62) - 87, (1 << 62) - 117]);
        for p in &first {
            assert!(is_prime(*p));
            assert!(*p > (1 << 61) && *p < (1 << 62));
        }
        // A second iterator yields the identical stream.
        assert_eq!(PrimeIterator::new().take(3).collect::<Vec<_>>(), first);
    }

    #[test]
    fn montgomery_roundtrip_and_identities() {
        let p = PrimeIterator::new().next().unwrap();
        let f = Fp64::new(p);
        for n in [0u64, 1, 2, 1234567, p - 1] {
            assert_eq!(f.from_montgomery(f.to_montgomery(n)), n);
        }
        assert_eq!(f.to_montgomery(1), f.one());
        assert_eq!(f.to_montgomery(0), f.zero());
        assert_eq!(f.from_i64(-1), f.neg(f.one()));
        assert_eq!(f.from_i64(i64::MIN), f.neg(f.to_montgomery(1 << 63)));
    }

    #[test]
    fn edge_elements_behave() {
        let p = PrimeIterator::new().next().unwrap();
        let f = Fp64::new(p);
        let one = f.one();
        let minus_one = f.to_montgomery(p - 1);
        // (p−1)² ≡ 1, (p−1) + 1 ≡ 0, 0·x ≡ 0, inverses of 1 and p−1.
        assert_eq!(f.mul(minus_one, minus_one), one);
        assert_eq!(f.add(minus_one, one), f.zero());
        assert_eq!(f.mul(f.zero(), minus_one), f.zero());
        assert_eq!(f.inv(one), one);
        assert_eq!(f.inv(minus_one), minus_one);
        assert_eq!(f.neg(f.zero()), f.zero());
        assert_eq!(f.pow(minus_one, p - 1), one); // Fermat
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_is_rejected() {
        Fp64::new(1 << 40);
    }

    /// A random odd 62-bit prime derived deterministically from a seed
    /// offset, by walking the fixed prime stream.
    fn prime_from_offset(offset: usize) -> u64 {
        PrimeIterator::new().nth(offset % 7).unwrap()
    }

    proptest! {
        /// Montgomery multiplication and inversion agree with naive u128
        /// modular arithmetic across random odd 62-bit primes — the same
        /// differential style as the small-rational promotion fuzz.
        #[test]
        fn prop_montgomery_matches_naive_u128(
            offset in 0usize..7,
            a in 0u64..u64::MAX,
            b in 0u64..u64::MAX,
        ) {
            let p = prime_from_offset(offset);
            let f = Fp64::new(p);
            let (ar, br) = (a % p, b % p);
            let (am, bm) = (f.to_montgomery(ar), f.to_montgomery(br));
            // Multiplication.
            prop_assert_eq!(f.from_montgomery(f.mul(am, bm)), naive_mul(ar, br, p));
            // Addition and subtraction.
            prop_assert_eq!(f.from_montgomery(f.add(am, bm)), ((ar as u128 + br as u128) % p as u128) as u64);
            prop_assert_eq!(
                f.from_montgomery(f.sub(am, bm)),
                ((ar as u128 + p as u128 - br as u128) % p as u128) as u64
            );
            // Inversion: a·a⁻¹ ≡ 1 for nonzero a.
            if ar != 0 {
                prop_assert_eq!(f.mul(am, f.inv(am)), f.one());
                prop_assert_eq!(f.from_montgomery(f.div(bm, am)), naive_mul(br, f.from_montgomery(f.inv(am)), p));
            }
        }

        /// Exponentiation matches the naive square-and-multiply reference.
        #[test]
        fn prop_pow_matches_naive(offset in 0usize..7, a in 0u64..u64::MAX, e in 0u64..4096) {
            let p = prime_from_offset(offset);
            let f = Fp64::new(p);
            let ar = a % p;
            prop_assert_eq!(f.from_montgomery(f.pow(f.to_montgomery(ar), e)), pow_mod(ar, e, p));
        }
    }
}
