//! # symmap-numeric
//!
//! Arithmetic substrate for the symmap library-mapping suite.
//!
//! The DAC 2002 methodology manipulates *exact* multivariate polynomials
//! (Gröbner bases are numerically meaningless over floating point), evaluates
//! candidate mappings in *embedded fixed-point* formats, and approximates
//! nonlinear functions with *truncated series*. This crate provides those three
//! numeric worlds:
//!
//! * [`bigint::BigInt`] — arbitrary-precision signed integers,
//! * [`rational::Rational`] — exact rationals with an inline `i64`/`u64`
//!   fast path, promoting to [`bigint::BigInt`] pairs only on checked
//!   overflow (typical Gröbner coefficients never allocate),
//! * [`fp64::Fp64`] — ℤ/p arithmetic for 62-bit primes in Montgomery form,
//!   plus a deterministic [`fp64::PrimeIterator`]; the substrate of the
//!   modular Gröbner engine,
//! * [`crt`] — Chinese remaindering and rational reconstruction, the lift
//!   from per-prime coefficient images back to exact ℚ,
//! * [`fixed::Fixed`] — parameterised Q-format fixed-point values as used by the
//!   in-house ("IH") library of the paper,
//! * [`series`] — Taylor and Chebyshev expansions used in target-code
//!   identification (§3.2 of the paper),
//! * [`interp`] — Newton interpolation used to recover polynomial
//!   representations of bit-manipulation routines (§3.2, ref. \[22\]).
//!
//! ## Example
//!
//! ```
//! use symmap_numeric::rational::Rational;
//!
//! let a = Rational::new(1, 3);
//! let b = Rational::new(1, 6);
//! assert_eq!(a + b, Rational::new(1, 2));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod bigint;
pub mod crt;
pub mod error;
pub mod fixed;
pub mod fp64;
pub mod interp;
pub mod rational;
pub mod series;

pub use bigint::BigInt;
pub use crt::{crt_combine, crt_pair, rational_reconstruct};
pub use error::NumericError;
pub use fixed::{Fixed, QFormat};
pub use fp64::{Fp64, PrimeIterator};
pub use rational::Rational;
