//! Chinese remaindering and rational reconstruction.
//!
//! The multi-modular Gröbner path computes coefficient images mod a sequence
//! of 62-bit primes, combines them into a residue mod the product with
//! [`crt_pair`]/[`crt_combine`], and lifts back to ℚ with
//! [`rational_reconstruct`]. Everything here is exact limb arithmetic over
//! [`BigInt`] plus `u128` words — no floats, no probabilistic shortcuts —
//! and the functions are pure, so the lifted coefficients are a
//! deterministic function of the residues and the prime sequence.

use crate::bigint::BigInt;

/// `a⁻¹ mod m` for coprime `a`, `m` with `m ≥ 2`, by the extended Euclidean
/// algorithm in `i128` (safe: all intermediate values are bounded by `m`).
///
/// # Panics
///
/// Panics when `gcd(a, m) ≠ 1` — callers pass distinct primes, so a
/// violation means the prime sequence is broken, not a data condition.
fn inv_mod_u64(a: u64, m: u64) -> u64 {
    assert!(m >= 2, "modulus must be at least 2");
    let (mut old_r, mut r) = ((a % m) as i128, m as i128);
    let (mut old_s, mut s) = (1_i128, 0_i128);
    while r != 0 {
        let q = old_r / r;
        let next_r = old_r - q * r;
        old_r = std::mem::replace(&mut r, next_r);
        let next_s = old_s - q * s;
        old_s = std::mem::replace(&mut s, next_s);
    }
    assert!(old_r == 1, "inv_mod_u64 requires coprime inputs");
    old_s.rem_euclid(m as i128) as u64
}

/// Combines a residue `r1 mod m1` with a residue `r2 mod m2` into the unique
/// residue mod `m1·m2`, returning `(combined, m1·m2)`.
///
/// Preconditions: `0 ≤ r1 < m1`, `r2 < m2`, and `gcd(m1, m2) = 1`. The
/// incremental shape (arbitrary-precision accumulator plus one machine-word
/// prime) matches how the multi-modular engine grows its modulus one prime
/// at a time.
pub fn crt_pair(r1: &BigInt, m1: &BigInt, r2: u64, m2: u64) -> (BigInt, BigInt) {
    debug_assert!(!r1.is_negative() && r1 < m1, "r1 must be reduced mod m1");
    debug_assert!(r2 < m2, "r2 must be reduced mod m2");
    // combined = r1 + m1·t with t ≡ (r2 − r1)·m1⁻¹ (mod m2); all the
    // word-sized arithmetic stays inside u128 because m2 < 2⁶⁴.
    let r1_mod = r1.mod_u64(m2);
    let delta = if r2 >= r1_mod {
        r2 - r1_mod
    } else {
        r2 + (m2 - r1_mod)
    };
    let inv = inv_mod_u64(m1.mod_u64(m2), m2);
    let t = ((delta as u128 * inv as u128) % m2 as u128) as u64;
    let combined = r1 + &(m1 * &BigInt::from(t));
    let modulus = m1 * &BigInt::from(m2);
    (combined, modulus)
}

/// Folds a slice of `(residue, prime)` pairs into `(combined, modulus)` with
/// `modulus = ∏ primes`. The primes must be pairwise distinct (coprime).
/// Returns `(0, 1)` for an empty slice.
pub fn crt_combine(residues: &[(u64, u64)]) -> (BigInt, BigInt) {
    let mut acc = BigInt::zero();
    let mut modulus = BigInt::one();
    for &(r, p) in residues {
        (acc, modulus) = crt_pair(&acc, &modulus, r, p);
    }
    (acc, modulus)
}

/// Rational reconstruction: finds the unique fraction `n/d` with
/// `n ≡ a·d (mod m)`, `gcd(n, d) = 1`, `d > 0` and `2n² < m`, `2d² < m`
/// (the standard `|n|, d < √(m/2)` bound), if one exists.
///
/// Uses the half-extended Euclidean algorithm on `(m, a)`: the remainder
/// sequence is walked until `2·r² < m`, at which point `(r, t)` is the
/// candidate `(n, d)`. The invariant `rᵢ ≡ tᵢ·a (mod m)` makes the congruence
/// hold by construction; the bound checks and the coprimality check make the
/// answer unique, so a successful reconstruction is *the* fraction every
/// sufficiently large modulus agrees on.
///
/// # Panics
///
/// Panics when `m < 2`.
pub fn rational_reconstruct(a: &BigInt, m: &BigInt) -> Option<(BigInt, BigInt)> {
    assert!(*m >= BigInt::from(2_i64), "modulus must be at least 2");
    // Reduce to the least non-negative residue.
    let (_, mut a) = a.div_rem(m);
    if a.is_negative() {
        a += m;
    }
    if a.is_zero() {
        return Some((BigInt::zero(), BigInt::one()));
    }
    let two = BigInt::from(2_i64);
    let (mut r0, mut r1) = (m.clone(), a);
    let (mut t0, mut t1) = (BigInt::zero(), BigInt::one());
    while &two * &(&r1 * &r1) >= *m {
        let (q, rem) = r0.div_rem(&r1);
        r0 = std::mem::replace(&mut r1, rem);
        let next_t = &t0 - &(&q * &t1);
        t0 = std::mem::replace(&mut t1, next_t);
    }
    let (mut n, mut d) = (r1, t1);
    if d.is_zero() {
        return None;
    }
    if d.is_negative() {
        n = -n;
        d = -d;
    }
    if &two * &(&d * &d) >= *m {
        return None;
    }
    if !n.gcd(&d).is_one() {
        return None;
    }
    Some((n, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp64::PrimeIterator;
    use proptest::prelude::*;

    /// A fixed pool of odd primes straddling the u32 and u64 boundaries, so
    /// the proptests exercise both single-limb and multi-limb `BigInt`
    /// moduli (the promotion boundary, in the PR 3 small-rational style).
    fn prime_pool() -> Vec<u64> {
        let mut pool = vec![3, 101, 1_000_003, 4_294_967_311, 2_147_483_659];
        pool.extend(PrimeIterator::new().take(3));
        pool
    }

    /// `num·den⁻¹ mod m` computed independently through the extended gcd —
    /// the oracle side of the reconstruction round trip.
    fn residue_of_fraction(num: i64, den: i64, m: &BigInt) -> BigInt {
        let (g, inv, _) = BigInt::from(den).extended_gcd(m);
        assert!(
            g.is_one(),
            "test fraction must have denominator coprime to m"
        );
        let (_, mut r) = (&BigInt::from(num) * &inv).div_rem(m);
        if r.is_negative() {
            r += m;
        }
        r
    }

    #[test]
    fn crt_pair_small_known_values() {
        // x ≡ 2 (mod 3), x ≡ 3 (mod 5) → x = 8 (mod 15).
        let (r, m) = crt_pair(&BigInt::from(2_i64), &BigInt::from(3_i64), 3, 5);
        assert_eq!(r.to_i64().unwrap(), 8);
        assert_eq!(m.to_i64().unwrap(), 15);
        // Folding from the empty accumulator reproduces the residues.
        let (r, m) = crt_combine(&[(2, 3), (3, 5), (2, 7)]);
        assert_eq!(m.to_i64().unwrap(), 105);
        assert_eq!(r.mod_u64(3), 2);
        assert_eq!(r.mod_u64(5), 3);
        assert_eq!(r.mod_u64(7), 2);
    }

    #[test]
    fn crt_combine_empty_is_zero_mod_one() {
        let (r, m) = crt_combine(&[]);
        assert!(r.is_zero());
        assert!(m.is_one());
    }

    #[test]
    fn reconstruct_zero_and_integers() {
        let p = PrimeIterator::new().next().unwrap();
        let m = BigInt::from(p);
        assert_eq!(
            rational_reconstruct(&BigInt::zero(), &m),
            Some((BigInt::zero(), BigInt::one()))
        );
        // Small integers are their own reconstruction.
        for v in [1_i64, -1, 42, -1000] {
            let a = residue_of_fraction(v, 1, &m);
            assert_eq!(
                rational_reconstruct(&a, &m),
                Some((BigInt::from(v), BigInt::one()))
            );
        }
    }

    #[test]
    fn reconstruct_requires_room_in_the_modulus() {
        // m = 101: the bound √(m/2) ≈ 7.1, so 1/10 has no representative
        // fraction inside the box and reconstruction must refuse rather
        // than return a wrong small fraction.
        let m = BigInt::from(101_i64);
        let a = residue_of_fraction(1, 10, &m);
        assert_eq!(rational_reconstruct(&a, &m), None);
        // The same fraction reconstructs once the modulus has room.
        let m = BigInt::from(1_000_003_i64);
        let a = residue_of_fraction(1, 10, &m);
        assert_eq!(
            rational_reconstruct(&a, &m),
            Some((BigInt::one(), BigInt::from(10_i64)))
        );
    }

    proptest! {
        /// CRT over two distinct pool primes agrees with direct u128
        /// remaindering of a random value, across the single-limb/multi-limb
        /// promotion boundary.
        #[test]
        fn prop_crt_pair_matches_u128_oracle(i in 0usize..8, j in 0usize..8, hi in any::<u64>(), lo in any::<u64>()) {
            let pool = prime_pool();
            prop_assume!(i != j);
            let (p1, p2) = (pool[i], pool[j]);
            let m = p1 as u128 * p2 as u128;
            let x = (((hi as u128) << 64) | lo as u128) % m;
            let (r, modulus) = crt_combine(&[((x % p1 as u128) as u64, p1), ((x % p2 as u128) as u64, p2)]);
            prop_assert_eq!(modulus.to_string(), m.to_string());
            prop_assert_eq!(r.to_string(), x.to_string());
        }

        /// Round trip: a random reduced fraction, pushed into a residue mod a
        /// product of two 62-bit primes, reconstructs to exactly itself.
        #[test]
        fn prop_reconstruct_round_trips(num in -1_000_000_i64..1_000_000, den in 1_i64..1_000_000) {
            let g = num.unsigned_abs().max(1).gcd_reduce(den.unsigned_abs());
            let (num, den) = (num / g as i64, den / g as i64);
            let primes: Vec<u64> = PrimeIterator::new().take(2).collect();
            let m = &BigInt::from(primes[0]) * &BigInt::from(primes[1]);
            let a = residue_of_fraction(num, den, &m);
            prop_assert_eq!(
                rational_reconstruct(&a, &m),
                Some((BigInt::from(num), BigInt::from(den)))
            );
        }

        /// Soundness over an exhaustive-ish residue sweep: whatever
        /// reconstruction returns satisfies the congruence, the bounds and
        /// coprimality — it never fabricates an unsound fraction.
        #[test]
        fn prop_reconstruct_is_sound(a in 0_i64..10_007) {
            let m = BigInt::from(10_007_i64);
            if let Some((n, d)) = rational_reconstruct(&BigInt::from(a), &m) {
                // n ≡ a·d (mod m)
                let (_, rem) = (&(&BigInt::from(a) * &d) - &n).div_rem(&m);
                prop_assert!(rem.is_zero());
                prop_assert!(d.is_positive());
                prop_assert!(n.gcd(&d).is_one());
                let two = BigInt::from(2_i64);
                prop_assert!(&two * &(&n * &n) < m);
                prop_assert!(&two * &(&d * &d) < m);
            }
        }
    }

    /// Plain u64 gcd helper for the round-trip test (std has no stable
    /// `u64::gcd`).
    trait GcdReduce {
        fn gcd_reduce(self, other: u64) -> u64;
    }
    impl GcdReduce for u64 {
        fn gcd_reduce(self, other: u64) -> u64 {
            let (mut a, mut b) = (self, other);
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a.max(1)
        }
    }
}
