//! The event vocabulary of the trace layer.
//!
//! A [`TraceEvent`] is deliberately tiny and allocation-light: a static name,
//! a phase ([`EventKind`]), a **logical** sequence number (its position in
//! the stream that recorded it — never a wall-clock reading, see the crate
//! docs for why), and a short list of named integer arguments. Everything
//! wall-clock lives in the sched channel and the [`crate::sink`] module.

/// The phase of a trace event, mirroring the chrome://tracing `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span open (`ph: "B"`). Must be balanced by an [`EventKind::End`] in
    /// the same stream.
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
}

impl EventKind {
    /// The chrome trace-event `ph` letter for this kind.
    pub fn chrome_ph(self) -> char {
        match self {
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Instant => 'i',
            EventKind::Counter => 'C',
        }
    }

    /// Single-letter tag used by the canonical textual transcript.
    pub fn tag(self) -> char {
        match self {
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Instant => 'I',
            EventKind::Counter => 'C',
        }
    }
}

/// One recorded event. `seq` is the logical clock: the index this event was
/// assigned by its stream's monotone counter (ring-buffer truncation drops
/// old events but never renumbers survivors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical timestamp: position in the recording stream.
    pub seq: u64,
    /// Static event name, e.g. `"groebner.compute"`.
    pub name: &'static str,
    /// Phase of the event.
    pub kind: EventKind,
    /// Named integer arguments, in recording order.
    pub args: Vec<(&'static str, u64)>,
}

/// A bounded stream of events plus the count of events the ring dropped.
///
/// The buffer is a true ring: when full, the **oldest** event is dropped so
/// the stream always holds the most recent `capacity` events. Because every
/// stream in the deterministic channels is itself a pure function of its
/// input, the kept window (and the drop count) are deterministic too.
#[derive(Debug, Clone, Default)]
pub struct EventStream {
    /// Human-readable stream label (job label, compute-key rendering).
    pub label: String,
    /// The surviving events, oldest first, `seq` strictly increasing.
    pub events: Vec<TraceEvent>,
    /// Events evicted by the ring bound.
    pub dropped: u64,
}

/// One scheduling-channel event. This channel is **explicitly outside** the
/// byte-identity contract: it records which worker did what and when, which
/// is exactly the nondeterminism the deterministic channels must exclude.
#[derive(Debug, Clone)]
pub struct SchedEvent {
    /// Arrival index in the sched channel (global, racy by design).
    pub seq: u64,
    /// Wall-clock nanoseconds from the collector's [`crate::clock::Clock`].
    pub ts_ns: u64,
    /// Worker index when the recording site knows it.
    pub worker: Option<usize>,
    /// Static event name, e.g. `"pool.steal"`.
    pub name: &'static str,
    /// Named integer arguments.
    pub args: Vec<(&'static str, u64)>,
}
