//! The recorder: per-thread scopes, bounded ring buffers and the three-channel
//! [`TraceCollector`].
//!
//! # The three channels
//!
//! Worker scheduling decides *which thread* runs a job and *which lookup*
//! computes a shared cache entry — but never what any computation returns.
//! The recorder turns that invariant into a byte-identity contract by
//! splitting events into three channels:
//!
//! * **Job channel** — events recorded under a [`JobScope`] (one per
//!   `MapJob`, installed by the engine around `map_polynomial`). A mapping
//!   job is a pure function of its inputs, so its event stream is too.
//!   Streams are merged **by job index**, never by completion order.
//! * **Compute channel** — events recorded under a [`ComputeScope`]
//!   (installed by the shared Gröbner cache around each basis computation,
//!   keyed by the ring-local cache key). A basis computation is a pure
//!   function of its key, so every racing computation of the same key
//!   yields the **identical** stream; the collector stores streams in a
//!   `BTreeMap` by key, so duplicates collapse and the channel is the
//!   deterministic set of computed keys in key order.
//! * **Sched channel** — worker identities, steals, cache hit/miss races,
//!   wall-clock timestamps. Explicitly nondeterministic; excluded from the
//!   canonical transcript and from all byte-identity tests.
//!
//! Both deterministic channels use **logical clocks only**: an event's
//! timestamp is its index in its own stream. Lint rule D2 stays intact
//! because nothing here reads wall time — sched timestamps come from the
//! collector's [`Clock`], whose real implementation is quarantined in
//! [`crate::sink`].
//!
//! # Zero cost when disabled
//!
//! All recording funnels through [`record_raw`]/[`sched_raw`], which the
//! `trace_*!` macros guard with [`enabled`] — a single relaxed atomic load
//! when no collector exists anywhere in the process. With a collector live
//! but no scope installed on the calling thread, recording is one
//! thread-local check. The non-perturbation claim (batch output
//! byte-identical with tracing on/off) is enforced by test, not argued.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, NullClock};
use crate::event::{EventKind, EventStream, SchedEvent, TraceEvent};

/// Default per-stream ring capacity (events kept per job / per compute).
pub const DEFAULT_STREAM_CAPACITY: usize = 8192;

/// Process-wide count of live [`TraceCollector`]s: the fast-path gate.
static ACTIVE_COLLECTORS: AtomicUsize = AtomicUsize::new(0);

/// True when any collector is live in the process. The `trace_*!` macros
/// check this before touching thread-local state, so a disabled build path
/// costs one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_COLLECTORS.load(Ordering::Relaxed) > 0
}

/// A bounded ring of events with a monotone logical clock.
#[derive(Debug)]
struct RingBuf {
    label: String,
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Index of the logical start of the ring inside `events` once full.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl RingBuf {
    fn new(label: String, capacity: usize) -> Self {
        RingBuf {
            label,
            capacity: capacity.max(1),
            events: Vec::new(),
            head: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, name: &'static str, kind: EventKind, args: &[(&'static str, u64)]) {
        let event = TraceEvent {
            seq: self.next_seq,
            name,
            kind,
            args: args.to_vec(),
        };
        self.next_seq += 1;
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            // Ring semantics: overwrite the oldest event. The window kept is
            // the most recent `capacity` events; survivors keep their seq.
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn into_stream(self) -> EventStream {
        let RingBuf {
            label,
            events,
            head,
            dropped,
            ..
        } = self;
        let mut ordered = Vec::with_capacity(events.len());
        ordered.extend_from_slice(&events[head..]);
        ordered.extend_from_slice(&events[..head]);
        EventStream {
            label,
            events: ordered,
            dropped,
        }
    }
}

/// The finalized output of one traced batch.
#[derive(Debug, Clone, Default)]
pub struct BatchTrace {
    /// One stream per job, indexed by job index (deterministic channel).
    pub jobs: Vec<EventStream>,
    /// One stream per computed cache key, in key order (deterministic
    /// channel; racing duplicate computations collapse to one entry).
    pub computes: Vec<(u64, EventStream)>,
    /// The nondeterministic scheduling channel, in arrival order.
    pub sched: Vec<SchedEvent>,
}

impl BatchTrace {
    /// The canonical textual transcript of the **deterministic** channels:
    /// job streams by index, then compute streams by key. This is the string
    /// the determinism suite compares byte-for-byte across worker counts.
    /// Sched events are deliberately absent.
    pub fn deterministic_transcript(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, stream) in self.jobs.iter().enumerate() {
            writeln!(out, "job {i} {}", stream.label).expect("writing to String cannot fail");
            write_stream_events(&mut out, stream);
        }
        for (key, stream) in &self.computes {
            writeln!(out, "compute {key:016x} {}", stream.label)
                .expect("writing to String cannot fail");
            write_stream_events(&mut out, stream);
        }
        out
    }

    /// Total events surviving in the deterministic channels.
    pub fn deterministic_event_count(&self) -> usize {
        self.jobs.iter().map(|s| s.events.len()).sum::<usize>()
            + self
                .computes
                .iter()
                .map(|(_, s)| s.events.len())
                .sum::<usize>()
    }
}

fn write_stream_events(out: &mut String, stream: &EventStream) {
    use std::fmt::Write as _;
    for e in &stream.events {
        write!(out, "  {:>6} {} {}", e.seq, e.kind.tag(), e.name)
            .expect("writing to String cannot fail");
        for (k, v) in &e.args {
            write!(out, " {k}={v}").expect("writing to String cannot fail");
        }
        out.push('\n');
    }
    if stream.dropped > 0 {
        writeln!(out, "  dropped={}", stream.dropped).expect("writing to String cannot fail");
    }
}

/// Collects the three channels for one batch. Construct one per traced
/// batch (the engine does this when tracing is enabled), install
/// [`JobScope`]s on worker threads, and [`finalize`](Self::finalize) after
/// the pool barrier.
pub struct TraceCollector {
    stream_capacity: usize,
    jobs: Mutex<Vec<Option<EventStream>>>,
    computes: Mutex<BTreeMap<u64, EventStream>>,
    sched: Mutex<Vec<SchedEvent>>,
    sched_seq: AtomicU64,
    clock: Box<dyn Clock>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("stream_capacity", &self.stream_capacity)
            .finish_non_exhaustive()
    }
}

impl TraceCollector {
    /// A collector for `job_count` jobs with the default ring capacity and
    /// a [`NullClock`] (sched timestamps read 0; arrival order still holds).
    pub fn new(job_count: usize) -> Arc<Self> {
        Self::with_clock(job_count, DEFAULT_STREAM_CAPACITY, Box::new(NullClock))
    }

    /// Full-control constructor: ring capacity per stream and the sched
    /// channel's clock (pass [`crate::sink::WallClock`] for real timestamps).
    pub fn with_clock(
        job_count: usize,
        stream_capacity: usize,
        clock: Box<dyn Clock>,
    ) -> Arc<Self> {
        ACTIVE_COLLECTORS.fetch_add(1, Ordering::Relaxed);
        Arc::new(TraceCollector {
            stream_capacity: stream_capacity.max(1),
            jobs: Mutex::new((0..job_count).map(|_| None).collect()),
            computes: Mutex::new(BTreeMap::new()),
            sched: Mutex::new(Vec::new()),
            sched_seq: AtomicU64::new(0),
            clock,
        })
    }

    /// Records one sched-channel event with an explicit worker identity
    /// (pool and engine call this through their observer adapter).
    pub fn sched_event(
        &self,
        worker: Option<usize>,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        let event = SchedEvent {
            seq: self.sched_seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.clock.now_ns(),
            worker,
            name,
            args: args.to_vec(),
        };
        self.sched
            .lock()
            .expect("sched channel poisoned")
            .push(event);
    }

    /// Drains the collector into a [`BatchTrace`]. Call after every scope
    /// has dropped (the engine's pool barrier guarantees this); a job that
    /// never installed a scope yields an empty stream.
    pub fn finalize(&self) -> BatchTrace {
        let jobs = self
            .jobs
            .lock()
            .expect("job channel poisoned")
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_default())
            .collect();
        let computes =
            std::mem::take(&mut *self.computes.lock().expect("compute channel poisoned"))
                .into_iter()
                .collect();
        let sched = std::mem::take(&mut *self.sched.lock().expect("sched channel poisoned"));
        BatchTrace {
            jobs,
            computes,
            sched,
        }
    }
}

impl Drop for TraceCollector {
    fn drop(&mut self) {
        ACTIVE_COLLECTORS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-thread recording context: the installed collector, the active job
/// buffer and the stack of active compute buffers.
#[derive(Default)]
struct ThreadCtx {
    collector: Option<Arc<TraceCollector>>,
    job: Option<(usize, RingBuf)>,
    computes: Vec<(u64, RingBuf)>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::default());
}

/// Guard for one job's recording scope. Created by the engine on whichever
/// worker runs the job; dropping it files the stream under the job's index,
/// so the merged output never depends on completion order.
#[must_use = "the job stream is filed when the scope drops"]
pub struct JobScope {
    active: bool,
}

/// Installs a job scope for `job_index` on the current thread. Nested job
/// scopes are a caller bug and panic (jobs never nest: one scope per pool
/// job invocation).
pub fn install_job_scope(
    collector: &Arc<TraceCollector>,
    job_index: usize,
    label: &str,
) -> JobScope {
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        assert!(
            ctx.job.is_none() && ctx.collector.is_none(),
            "job scopes must not nest"
        );
        ctx.collector = Some(Arc::clone(collector));
        ctx.job = Some((
            job_index,
            RingBuf::new(label.to_string(), collector.stream_capacity),
        ));
    });
    record_raw("job", EventKind::Begin, &[("job", job_index as u64)]);
    JobScope { active: true }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        record_raw("job", EventKind::End, &[]);
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            debug_assert!(
                ctx.computes.is_empty(),
                "compute scopes must close before their job scope"
            );
            if let (Some(collector), Some((index, buf))) = (ctx.collector.take(), ctx.job.take()) {
                let mut jobs = collector.jobs.lock().expect("job channel poisoned");
                if index < jobs.len() {
                    jobs[index] = Some(buf.into_stream());
                }
            }
        });
    }
}

/// Guard for one basis computation's recording scope, keyed by the
/// (pre-hashed) ring-local cache key. Events recorded while it is open go
/// to the compute channel; on drop the stream is filed under `key` —
/// overwriting any racing duplicate, which recorded the identical stream
/// (the computation is a pure function of the key).
#[must_use = "the compute stream is filed when the scope drops"]
pub struct ComputeScope {
    active: bool,
}

/// Opens a compute scope on the current thread. Returns an inert guard when
/// no collector is installed here (e.g. a cache used outside a traced
/// batch), so callers never branch.
pub fn install_compute_scope(key: u64, label: &str) -> ComputeScope {
    let active = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let Some(collector) = ctx.collector.as_ref() else {
            return false;
        };
        let capacity = collector.stream_capacity;
        ctx.computes
            .push((key, RingBuf::new(label.to_string(), capacity)));
        true
    });
    if active {
        record_raw("compute", EventKind::Begin, &[("key", key)]);
    }
    ComputeScope { active }
}

impl Drop for ComputeScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        record_raw("compute", EventKind::End, &[]);
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if let Some((key, buf)) = ctx.computes.pop() {
                if let Some(collector) = ctx.collector.as_ref() {
                    collector
                        .computes
                        .lock()
                        .expect("compute channel poisoned")
                        .insert(key, buf.into_stream());
                }
            }
        });
    }
}

/// Records one event into the innermost deterministic stream on this thread
/// (compute scope if one is open, else the job scope, else dropped). The
/// `trace_event!`/`trace_span!` macros are the supported entry point; lint
/// rule D6 flags direct calls outside `crates/trace` and the engine.
pub fn record_raw(name: &'static str, kind: EventKind, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if let Some((_, buf)) = ctx.computes.last_mut() {
            buf.push(name, kind, args);
        } else if let Some((_, buf)) = ctx.job.as_mut() {
            buf.push(name, kind, args);
        }
    });
}

/// Records one sched-channel event through the thread's installed collector
/// (no worker identity — recording sites below the pool don't know theirs).
/// Use the `trace_sched!` macro; lint rule D6 flags direct calls.
pub fn sched_raw(name: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        if let Some(collector) = ctx.collector.as_ref() {
            collector.sched_event(None, name, args);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        // No collector installed on this thread: record_raw must not panic
        // and must not leak state. (`enabled()` may be true because other
        // tests hold collectors; the TLS check still drops the event.)
        record_raw("orphan", EventKind::Instant, &[("k", 1)]);
        sched_raw("orphan.sched", &[]);
    }

    #[test]
    fn job_streams_are_filed_by_index_not_completion_order() {
        let collector = TraceCollector::new(2);
        {
            let _scope = install_job_scope(&collector, 1, "second");
            record_raw("work", EventKind::Instant, &[("x", 2)]);
        }
        {
            let _scope = install_job_scope(&collector, 0, "first");
            record_raw("work", EventKind::Instant, &[("x", 1)]);
        }
        let trace = collector.finalize();
        assert_eq!(trace.jobs.len(), 2);
        assert_eq!(trace.jobs[0].label, "first");
        assert_eq!(trace.jobs[1].label, "second");
        assert_eq!(trace.jobs[0].events[1].args, vec![("x", 1)]);
    }

    #[test]
    fn compute_scope_captures_nested_events_and_dedups_by_key() {
        let collector = TraceCollector::new(1);
        for _ in 0..2 {
            // Two "racing" computations of the same key record the same
            // stream; the channel keeps one entry.
            let _job = install_job_scope(&collector, 0, "job");
            let _compute = install_compute_scope(0xfeed, "basis");
            record_raw("inner", EventKind::Instant, &[("r", 7)]);
        }
        let trace = collector.finalize();
        assert_eq!(trace.computes.len(), 1);
        let (key, stream) = &trace.computes[0];
        assert_eq!(*key, 0xfeed);
        // compute Begin, inner, compute End.
        assert_eq!(stream.events.len(), 3);
        assert_eq!(stream.events[1].name, "inner");
        // The job stream holds only the job span (inner went to the compute).
        assert_eq!(trace.jobs[0].events.len(), 2);
    }

    #[test]
    fn ring_buffer_keeps_the_newest_window_and_counts_drops() {
        let collector = TraceCollector::with_clock(1, 4, Box::new(NullClock));
        {
            let _job = install_job_scope(&collector, 0, "ring");
            for i in 0..10u64 {
                record_raw("tick", EventKind::Instant, &[("i", i)]);
            }
        }
        let trace = collector.finalize();
        let stream = &trace.jobs[0];
        // 12 events total (job Begin + 10 ticks + job End), capacity 4.
        assert_eq!(stream.events.len(), 4);
        assert_eq!(stream.dropped, 8);
        let seqs: Vec<u64> = stream.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10, 11], "newest window, original seqs");
        assert_eq!(stream.events.last().unwrap().name, "job");
    }

    #[test]
    fn transcript_is_stable_and_excludes_sched() {
        let collector = TraceCollector::new(1);
        collector.sched_event(Some(3), "pool.steal", &[("job", 5)]);
        {
            let _job = install_job_scope(&collector, 0, "t");
            record_raw("point", EventKind::Instant, &[("a", 1), ("b", 2)]);
        }
        let trace = collector.finalize();
        let transcript = trace.deterministic_transcript();
        assert!(transcript.contains("job 0 t"));
        assert!(transcript.contains("point a=1 b=2"));
        assert!(
            !transcript.contains("pool.steal"),
            "sched leaked: {transcript}"
        );
        assert_eq!(trace.sched.len(), 1);
        assert_eq!(trace.sched[0].worker, Some(3));
    }

    #[test]
    fn compute_scope_without_a_collector_is_inert() {
        let _scope = install_compute_scope(1, "orphan");
        record_raw("nothing", EventKind::Instant, &[]);
    }
}
