// lint:allow-file(D2): the one sanctioned wall-clock source — every other
// module in the workspace reaches wall time only through the `Clock` trait,
// and deterministic trace streams never carry it at all (DESIGN.md §8).

//! The real wall clock, quarantined.
//!
//! [`WallClock`] is the only implementation of [`Clock`] that reads
//! `std::time`. It timestamps the *sched* channel (worker/steal/cache-race
//! events, explicitly outside the byte-identity contract) and the engine's
//! batch wall-time stat. Nothing on an algorithmic path may construct one;
//! lint rule D2 keeps it that way.

use std::time::Instant;

use crate::clock::Clock;

/// Monotone wall clock measuring nanoseconds since its own construction.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Starts a clock at "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a batch outliving 2^64 ns (~584 years)
        // is not a case worth a wider field.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_from_its_origin() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
