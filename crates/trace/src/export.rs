//! Exporters: chrome://tracing trace-event JSON for a [`BatchTrace`], plus a
//! minimal hand-rolled JSON parser used by the schema tests (the workspace
//! builds offline; there is no real JSON dependency to lean on).
//!
//! # Chrome trace layout
//!
//! The export is the *JSON object format* (`{"traceEvents": [...]}`), which
//! both Perfetto and `about:tracing` load:
//!
//! * `pid 1` — the job channel: one `tid` per job index, events stamped
//!   with their **logical** sequence number as `ts` (microsecond units are
//!   nominal; the axis reads as event ordinals).
//! * `pid 2` — the compute channel: one `tid` per computed cache key, in
//!   key order.
//! * `pid 0` — the sched channel: one `tid` per worker (tid 0 for events
//!   recorded below the pool, where the worker is unknown), stamped with
//!   the collector clock's nanoseconds ÷ 1000.
//!
//! Process/thread `"M"` metadata events name every lane. Span events are
//! emitted as recorded (`B`/`E`); within a deterministic stream `ts` is the
//! event's own `seq`, so spans are trivially well-nested per lane.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EventKind, EventStream, SchedEvent};
use crate::recorder::BatchTrace;
use crate::registry::escape_json;

/// Renders `trace` as chrome trace-event JSON.
pub fn to_chrome_json(trace: &BatchTrace) -> String {
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    meta(&mut out, &mut first, 1, 0, "process_name", "jobs");
    meta(&mut out, &mut first, 2, 0, "process_name", "computes");
    meta(&mut out, &mut first, 0, 0, "process_name", "sched");
    for (i, stream) in trace.jobs.iter().enumerate() {
        let tid = i as u64 + 1;
        meta(
            &mut out,
            &mut first,
            1,
            tid,
            "thread_name",
            &format!("job {i}: {}", stream.label),
        );
        stream_events(&mut out, &mut first, 1, tid, "job", stream);
    }
    for (lane, (key, stream)) in trace.computes.iter().enumerate() {
        let tid = lane as u64 + 1;
        meta(
            &mut out,
            &mut first,
            2,
            tid,
            "thread_name",
            &format!("compute {key:016x}: {}", stream.label),
        );
        stream_events(&mut out, &mut first, 2, tid, "compute", stream);
    }
    for event in &trace.sched {
        sched_event(&mut out, &mut first, event);
    }
    out.push_str("\n]\n}\n");
    out
}

fn meta(out: &mut String, first: &mut bool, pid: u64, tid: u64, name: &str, value: &str) {
    sep(out, first);
    write!(
        out,
        "{{\"name\": \"{name}\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        escape_json(value)
    )
    .expect("writing to String cannot fail");
}

fn stream_events(
    out: &mut String,
    first: &mut bool,
    pid: u64,
    tid: u64,
    cat: &str,
    stream: &EventStream,
) {
    for e in &stream.events {
        sep(out, first);
        write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"{cat}\", \"ph\": \"{}\", \
             \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}",
            escape_json(e.name),
            e.kind.chrome_ph(),
            e.seq
        )
        .expect("writing to String cannot fail");
        if e.kind == EventKind::Instant {
            // Thread-scoped instants render as small arrows in the lane.
            out.push_str(", \"s\": \"t\"");
        }
        args_object(out, &e.args);
        out.push('}');
    }
}

fn sched_event(out: &mut String, first: &mut bool, event: &SchedEvent) {
    sep(out, first);
    let tid = event.worker.map_or(0, |w| w as u64 + 1);
    write!(
        out,
        "{{\"name\": \"{}\", \"cat\": \"sched\", \"ph\": \"i\", \"s\": \"t\", \
         \"pid\": 0, \"tid\": {tid}, \"ts\": {}",
        escape_json(event.name),
        event.ts_ns / 1000
    )
    .expect("writing to String cannot fail");
    let mut args: Vec<(&'static str, u64)> = vec![("seq", event.seq)];
    args.extend_from_slice(&event.args);
    args_object(out, &args);
    out.push('}');
}

fn args_object(out: &mut String, args: &[(&'static str, u64)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(", \"args\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "\"{}\": {v}", escape_json(k)).expect("writing to String cannot fail");
    }
    out.push('}');
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// A parsed JSON value, as minimal as the schema tests need.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the schema tests only read integers
    /// that fit exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` so lookups and iteration are deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object map, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: &str) -> &JsonValue {
        static NULL: JsonValue = JsonValue::Null;
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

/// Parses a complete JSON document. Errors carry a byte offset and a short
/// message — enough for a failing schema test to point at the defect.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("short \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos = end;
                            // Surrogates are not expected from our own
                            // writers; map unpaired ones to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always on a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Structural validation of a chrome trace export: parses the JSON, checks
/// the trace-event schema fields, and checks that `B`/`E` spans balance per
/// `(pid, tid)` lane. Returns the event count. This is the "loads in
/// Perfetto/about:tracing" pin the acceptance criteria ask for, enforced as
/// a test rather than a screenshot.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = parse_json(json)?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("top-level \"traceEvents\" array missing")?;
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or(format!("event {i} not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or(format!("event {i} missing \"ph\""))?;
        obj.get("name")
            .and_then(JsonValue::as_str)
            .ok_or(format!("event {i} missing \"name\""))?;
        let pid = obj
            .get("pid")
            .and_then(JsonValue::as_u64)
            .ok_or(format!("event {i} missing \"pid\""))?;
        let tid = obj
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or(format!("event {i} missing \"tid\""))?;
        if ph != "M" && obj.get("ts").and_then(JsonValue::as_u64).is_none() {
            return Err(format!("event {i} missing \"ts\""));
        }
        match ph {
            "B" => *depth.entry((pid, tid)).or_insert(0) += 1,
            "E" => {
                let d = depth.entry((pid, tid)).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("unbalanced E at event {i} (pid {pid}, tid {tid})"));
                }
            }
            "i" | "C" | "M" => {}
            other => return Err(format!("event {i} has unknown ph {other:?}")),
        }
    }
    if let Some(((pid, tid), d)) = depth.iter().find(|(_, d)| **d != 0) {
        return Err(format!(
            "lane (pid {pid}, tid {tid}) ends with {d} unclosed span(s)"
        ));
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::{install_compute_scope, install_job_scope, record_raw, TraceCollector};

    fn sample_trace() -> BatchTrace {
        let collector = TraceCollector::new(2);
        {
            let _job = install_job_scope(&collector, 0, "alpha");
            record_raw("mapper.node", EventKind::Instant, &[("depth", 0)]);
            let _compute = install_compute_scope(42, "basis x+y");
            record_raw("groebner.compute", EventKind::Instant, &[("reductions", 3)]);
        }
        {
            let _job = install_job_scope(&collector, 1, "beta");
            record_raw("mapper.node", EventKind::Instant, &[("depth", 1)]);
        }
        collector.sched_event(Some(0), "pool.job.start", &[("job", 0)]);
        collector.finalize()
    }

    #[test]
    fn chrome_export_parses_and_balances() {
        let trace = sample_trace();
        let json = to_chrome_json(&trace);
        let count = validate_chrome_trace(&json).expect("export must validate");
        assert!(count > 5, "expected real events, got {count}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("pool.job.start"));
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let bad = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        let bad_close = r#"{"traceEvents": [
            {"name": "x", "ph": "E", "pid": 1, "tid": 1, "ts": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad_close).is_err());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc = parse_json(r#"{"a": [1, -2.5, "x\n\"yA", {"b": true, "c": null}], "d": false}"#)
            .unwrap();
        let a = doc["a"].as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1], JsonValue::Number(-2.5));
        assert_eq!(a[2].as_str(), Some("x\n\"yA"));
        assert_eq!(a[3]["b"], JsonValue::Bool(true));
        assert_eq!(a[3]["c"], JsonValue::Null);
        assert_eq!(doc["d"], JsonValue::Bool(false));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
