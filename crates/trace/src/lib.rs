//! # symmap-trace
//!
//! The workspace's deterministic observability layer: structured trace
//! spans/events over **logical clocks**, a unified metrics registry, and
//! chrome://tracing + JSON exporters. Dependency-free by design so every
//! crate (algebra, engine, bench) can instrument without widening its
//! dependency cone.
//!
//! Three ideas carry the whole module (DESIGN.md §8 has the full argument):
//!
//! 1. **Logical clocks only on algorithmic paths.** Deterministic trace
//!    streams are stamped with their own event ordinals — reduction counts,
//!    S-pair pops, prime rotations and cache probe sequence numbers are the
//!    time axis, never wall time. Lint rule D2 (no `Instant::now` outside
//!    the bench tree) therefore survives instrumentation untouched; the one
//!    real clock lives in [`sink`], the single module allowed under rule
//!    D2, and only timestamps the explicitly nondeterministic sched channel.
//! 2. **Three channels** ([`recorder`]): per-*job* streams merged by job
//!    index, per-*compute* streams keyed by the ring-local cache key (a
//!    basis computation is a pure function of its key, so racing duplicate
//!    computations record identical streams and collapse), and a *sched*
//!    channel for worker/steal/cache-race events that is excluded from the
//!    byte-identity contract. The first two are compared byte-for-byte
//!    across worker counts by the determinism suite.
//! 3. **One metrics facade** ([`registry`]): counters/gauges/histograms as
//!    `Arc`-shared atomic handles, snapshots as `BTreeMap`s, and a single
//!    [`MetricsSnapshot::delta_since`] replacing the three hand-rolled
//!    per-struct delta idioms the engine used to carry.
//!
//! Instrumentation goes through the [`trace_event!`], [`trace_span!`] and
//! [`trace_sched!`] macros — lint rule D6 flags direct recorder calls
//! outside this crate and the engine entry points. All macros gate on
//! [`enabled`], a relaxed atomic load, so a build with tracing off pays one
//! predictable branch per site.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod clock;
pub mod event;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod sink;

pub use clock::{Clock, NullClock};
pub use event::{EventKind, EventStream, SchedEvent, TraceEvent};
pub use export::{parse_json, to_chrome_json, validate_chrome_trace, JsonValue};
pub use recorder::{enabled, BatchTrace, TraceCollector};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};

/// Records one instant event into the innermost deterministic stream on
/// this thread (compute scope if open, else job scope, else dropped).
///
/// ```
/// symmap_trace::trace_event!("mapper.node", depth = 2usize, cost = 14u64);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::recorder::record_raw($name, $crate::EventKind::Instant, &[]);
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::recorder::record_raw(
                $name,
                $crate::EventKind::Instant,
                &[$((stringify!($key), ($value) as u64)),+],
            );
        }
    };
}

/// Records a span boundary (`begin` / `end`) in the innermost deterministic
/// stream. Callers are responsible for balance: every `begin` needs an
/// `end` on every control-flow path (the chrome-trace schema test enforces
/// this for the shipped exporters).
///
/// ```
/// symmap_trace::trace_span!(begin "mm.image", prime = 97u64);
/// symmap_trace::trace_span!(end "mm.image", complete = 1u64);
/// ```
#[macro_export]
macro_rules! trace_span {
    (begin $name:expr) => {
        if $crate::enabled() {
            $crate::recorder::record_raw($name, $crate::EventKind::Begin, &[]);
        }
    };
    (begin $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::recorder::record_raw(
                $name,
                $crate::EventKind::Begin,
                &[$((stringify!($key), ($value) as u64)),+],
            );
        }
    };
    (end $name:expr) => {
        if $crate::enabled() {
            $crate::recorder::record_raw($name, $crate::EventKind::End, &[]);
        }
    };
    (end $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::recorder::record_raw(
                $name,
                $crate::EventKind::End,
                &[$((stringify!($key), ($value) as u64)),+],
            );
        }
    };
}

/// Records a counter sample into the innermost deterministic stream
/// (renders as a chrome://tracing counter track).
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::recorder::record_raw(
                $name,
                $crate::EventKind::Counter,
                &[$((stringify!($key), ($value) as u64)),+],
            );
        }
    };
}

/// Records one event into the **sched** channel (worker races, cache
/// hit/miss outcomes, evictions — anything scheduling-dependent). Sched
/// events never enter the deterministic transcript.
#[macro_export]
macro_rules! trace_sched {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::recorder::sched_raw($name, &[]);
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::recorder::sched_raw($name, &[$((stringify!($key), ($value) as u64)),+]);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::recorder::{install_job_scope, TraceCollector};

    #[test]
    fn macros_record_into_the_active_scope() {
        let collector = TraceCollector::new(1);
        {
            let _job = install_job_scope(&collector, 0, "macro-test");
            trace_event!("bare");
            trace_event!("args", a = 1u64, b = 2usize);
            trace_span!(begin "span", x = 3u64);
            trace_span!(end "span");
            trace_counter!("ctr", v = 9u64);
            trace_sched!("sched.note", w = 1u64);
        }
        let trace = collector.finalize();
        let names: Vec<&str> = trace.jobs[0].events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec!["job", "bare", "args", "span", "span", "ctr", "job"]
        );
        assert_eq!(trace.jobs[0].events[2].args, vec![("a", 1), ("b", 2)]);
        assert_eq!(trace.sched.len(), 1);
        assert_eq!(trace.sched[0].name, "sched.note");
    }
}
