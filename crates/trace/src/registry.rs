//! The unified metrics registry: counters, gauges and histograms behind one
//! snapshot/delta facade.
//!
//! Before this module the workspace carried three parallel hand-rolled stat
//! idioms — per-shard cache counter structs, the fp-probe counters and
//! `LiftStats`, each with its own `delta_since` — plus the pool's steal
//! count. All of them are now handles registered here; the **single**
//! delta implementation is [`MetricsSnapshot::delta_since`].
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared atomics:
//! registration takes a lock once, every subsequent increment is lock-free.
//! Snapshots are `BTreeMap`s, so iteration order is deterministic (lint rule
//! D1 applies to the registry like everything else).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of power-of-two histogram buckets: bucket `i` counts values whose
/// bit length is `i` (value 0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3, …),
/// saturating in the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotone counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle (e.g. current cache-shard length).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A power-of-two-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: name → metric handle. One per `SharedGroebnerCache` (the
/// engine shares the cache's registry for its own pool counters), many
/// readers/writers, deterministic snapshot order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    /// Registering an existing name with a different metric type panics —
    /// that is a naming bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(Metric::Counter(c)) = self.metrics.read().expect("registry poisoned").get(name)
        {
            return c.clone();
        }
        let mut metrics = self.metrics.write().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(Metric::Gauge(g)) = self.metrics.read().expect("registry poisoned").get(name) {
            return g.clone();
        }
        let mut metrics = self.metrics.write().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(Metric::Histogram(h)) =
            self.metrics.read().expect("registry poisoned").get(name)
        {
            return h.clone();
        }
        let mut metrics = self.metrics.write().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Frozen histogram state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts (bucket `i` = values of bit length `i`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| b.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// A frozen view of a registry: the one snapshot/delta facade everything
/// (engine stats, reports, exporters) consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The change between `earlier` and `self`: counters and histograms
    /// subtract (saturating; a counter absent earlier counts from 0), gauges
    /// keep their **current** value (a gauge is a level, not a flow).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| {
                    let before = earlier.counters.get(name).copied().unwrap_or(0);
                    (name.clone(), v.saturating_sub(before))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| {
                    let before = earlier.histograms.get(name).cloned().unwrap_or_default();
                    (name.clone(), h.delta_since(&before))
                })
                .collect(),
        }
    }

    /// Counter value by exact name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by exact name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix` and ends with
    /// `suffix` — e.g. `sum_matching("cache.shard.", ".hits")` totals the
    /// per-shard hit counters.
    pub fn sum_matching(&self, prefix: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Machine-readable JSON rendering (`{"counters": {...}, "gauges":
    /// {...}, "histograms": {...}}`). Names are registry-controlled ASCII,
    /// but escaped anyway so the output is valid JSON for any name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            write_kv_sep(&mut out, &mut first);
            write!(out, "\"{}\": {v}", escape_json(name)).expect("writing to String cannot fail");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (name, v) in &self.gauges {
            write_kv_sep(&mut out, &mut first);
            write!(out, "\"{}\": {v}", escape_json(name)).expect("writing to String cannot fail");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            write_kv_sep(&mut out, &mut first);
            write!(
                out,
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                escape_json(name),
                h.count,
                h.sum
            )
            .expect("writing to String cannot fail");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write!(out, "{b}").expect("writing to String cannot fail");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn write_kv_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
        out.push_str("\n    ");
    } else {
        out.push_str(",\n    ");
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_once_and_share_handles() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("cache.shard.0.hits");
        let b = registry.counter("cache.shard.0.hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("cache.shard.0.hits").get(), 3);

        let g = registry.gauge("cache.shard.0.len");
        g.set(7);
        assert_eq!(registry.gauge("cache.shard.0.len").get(), 7);

        let h = registry.histogram("groebner.reductions");
        h.observe(0);
        h.observe(1);
        h.observe(5);
        let snap = registry.snapshot();
        let hs = &snap.histograms["groebner.reductions"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 6);
        assert_eq!(hs.buckets[0], 1); // value 0
        assert_eq!(hs.buckets[1], 1); // value 1
        assert_eq!(hs.buckets[3], 1); // value 5 (bit length 3)
    }

    #[test]
    fn snapshot_delta_is_the_single_delta_idiom() {
        let registry = MetricsRegistry::new();
        let hits = registry.counter("hits");
        let len = registry.gauge("len");
        let h = registry.histogram("sizes");
        hits.add(5);
        len.set(2);
        h.observe(4);
        let before = registry.snapshot();
        hits.add(3);
        len.set(9);
        h.observe(4);
        h.observe(100);
        let delta = registry.snapshot().delta_since(&before);
        assert_eq!(delta.counter("hits"), 3);
        assert_eq!(delta.gauge("len"), 9, "gauges report current level");
        assert_eq!(delta.histograms["sizes"].count, 2);
        assert_eq!(delta.histograms["sizes"].sum, 104);
        // A counter born after the earlier snapshot deltas from zero.
        registry.counter("new").add(4);
        let delta2 = registry.snapshot().delta_since(&before);
        assert_eq!(delta2.counter("new"), 4);
    }

    #[test]
    fn sum_matching_totals_shard_families() {
        let registry = MetricsRegistry::new();
        registry.counter("cache.shard.0.hits").add(2);
        registry.counter("cache.shard.1.hits").add(3);
        registry.counter("cache.shard.0.misses").add(10);
        registry.counter("alpha.shard.0.hits").add(100);
        let snap = registry.snapshot();
        assert_eq!(snap.sum_matching("cache.shard.", ".hits"), 5);
        assert_eq!(snap.sum_matching("cache.shard.", ".misses"), 10);
        assert_eq!(snap.sum_matching("alpha.shard.", ".hits"), 100);
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic() {
        let registry = MetricsRegistry::new();
        registry.counter("b").add(1);
        registry.counter("a").add(2);
        registry.gauge("g").set(-3);
        registry.histogram("h").observe(2);
        let snap = registry.snapshot();
        let json = snap.to_json();
        assert_eq!(json, registry.snapshot().to_json());
        let parsed = crate::export::parse_json(&json).expect("metrics JSON must parse");
        let obj = parsed.as_object().expect("top level is an object");
        assert!(obj.contains_key("counters"));
        assert!(obj.contains_key("gauges"));
        assert!(obj.contains_key("histograms"));
        let counters = obj["counters"].as_object().unwrap();
        assert_eq!(counters["a"].as_u64(), Some(2));
        // BTreeMap order: "a" renders before "b".
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn name_reuse_across_metric_types_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }
}
