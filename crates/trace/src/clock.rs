//! The `Clock` abstraction that quarantines wall time.
//!
//! Algorithmic code never reads a wall clock (lint rule D2); deterministic
//! trace streams are ordered by logical sequence numbers only. The *sched*
//! channel may carry wall-clock timestamps, but only through this trait —
//! and the only implementation that actually touches `std::time` lives in
//! [`crate::sink`], the one module annotated as allowed under rule D2.

/// A monotone nanosecond source for sched-channel timestamps.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// A clock that always reads zero: the default for deterministic tests and
/// for callers that want sched events ordered by arrival index alone.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_reads_zero_forever() {
        let c = NullClock;
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
    }
}
