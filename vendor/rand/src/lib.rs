//! Offline stand-in for `rand`.
//!
//! The workspace only ever draws *deterministic, seeded* pseudo-random values
//! (the synthetic MP3 granule generator — see `DESIGN.md` at the repo root),
//! so this shim implements the small slice of the `rand 0.8` API the code
//! uses — [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`rngs::StdRng`] — on top of a splitmix64 generator.
//!
//! Determinism is a feature here, not a limitation: every granule stream,
//! profile and table in the repo must reproduce bit-identically across runs,
//! which the real `StdRng` (explicitly not reproducible across rand versions)
//! does not guarantee.

#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable RNG, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, `bool` fair coin, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = uniform_u128_below(rng, span);
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = uniform_u128_below(rng, span);
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by modulo with a 128-bit multiply-shift
/// reduction (Lemire); span is at most 2^64 so one u64 draw suffices.
fn uniform_u128_below<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64() as u128;
    }
    (rng.next_u64() as u128 * span) >> 64
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Unlike the real `StdRng`, the stream for a given seed is stable
    /// forever — required for the reproducible synthetic MP3 granules.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiply rounds per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let w: i32 = rng.gen_range(0..4);
            assert!((0..4).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
