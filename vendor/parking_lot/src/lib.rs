//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` lock API shape the workspace uses — `lock()`
//! returning a guard directly, with no `Result` — so callers are source
//! compatible with the real crate. Poisoning is ignored (as `parking_lot`
//! itself has no poisoning): a poisoned std lock yields its inner guard.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
