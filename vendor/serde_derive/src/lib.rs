//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the real `serde_derive` cannot be fetched. Nothing in the
//! workspace ever serializes a value — the `#[derive(Serialize, Deserialize)]`
//! attributes on platform/library/mp3 data types only declare *intent* (the
//! types are plain data and are meant to be wire-friendly once a real serde is
//! available). These derives therefore expand to nothing: the types still
//! implement the marker traits in the sibling `serde` shim via its blanket
//! impls, and swapping in the real crates later requires no source changes.

#![deny(rustdoc::broken_intra_doc_links)]

use proc_macro::TokenStream;

/// Expands to nothing; see the crate-level docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate-level docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
