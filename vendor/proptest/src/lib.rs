//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API the workspace's unit tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), range /
//! tuple / [`collection::vec`] / [`any`] strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: every test draws from a splitmix64 stream seeded from
//!   the test's case counter, so failures reproduce bit-identically.
//! * **No shrinking**: a failing case panics with the drawn values via the
//!   ordinary `assert!` machinery instead of searching for a minimal input.
//! * **Rejection = skip**: `prop_assume!` skips the case rather than
//!   resampling it.

#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, RngCore, SeedableRng};

/// Constructs the deterministic per-case RNG (used by the [`proptest!`]
/// expansion, which cannot name this crate's `rand` dependency directly).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Strategy: something that can generate values from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the tests use.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy producing a fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
pub mod test_runner {
    /// Number-of-cases configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a unit test running `cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0u64..config.cases as u64 {
                    // Per-case deterministic stream; the case index salts the
                    // seed so every case draws fresh values.
                    let mut rng =
                        $crate::new_rng(0x90F7_1EB6_C9A2_5F01_u64.wrapping_add(case));
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    // The closure makes `prop_assume!`'s early `return` skip
                    // just this case.
                    let run = || { $body };
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption fails, mirroring
/// `prop_assume!`. (The real crate resamples; this shim just skips.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in -5_i64..5, pair in (0_u32..4, 1_u8..=3)) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((1..=3).contains(&pair.1));
        }

        #[test]
        fn vec_strategy(values in crate::collection::vec(-10_i32..10, 2..6)) {
            prop_assert!((2..6).contains(&values.len()));
            prop_assert!(values.iter().all(|v| (-10..10).contains(v)));
        }

        #[test]
        fn assume_skips(b in any::<i64>()) {
            prop_assume!(b != 0);
            prop_assert_ne!(b, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        let mut one = Vec::new();
        let mut two = Vec::new();
        for out in [&mut one, &mut two] {
            let mut rng = crate::new_rng(9);
            for _ in 0..10 {
                out.push((-100_i64..100).generate(&mut rng));
            }
        }
        assert_eq!(one, two);
    }
}
