//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of the criterion 0.5 API the `symmap-bench` harnesses use —
//! [`Criterion`] with `sample_size` / `warm_up_time` / `measurement_time`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — as a plain wall-clock runner.
//!
//! It is *not* a statistics engine: each `bench_function` warms up for the
//! configured warm-up time, then takes `sample_size` timed samples and prints
//! min / mean / max ns-per-iteration. That is enough for `cargo bench` to
//! compile, run and produce comparable numbers; swapping in the real
//! criterion later requires no changes to the bench sources.

#![deny(rustdoc::broken_intra_doc_links)]

use std::time::{Duration, Instant};

/// Re-export point mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver mirroring the used subset of `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget the samples aim to fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: warm-up, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up phase: run the routine untimed until the budget elapses.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        while Instant::now() < warm_up_end {
            bencher.reset();
            f(&mut bencher);
            if bencher.iterations == 0 {
                break; // routine never called iter(); nothing to warm up
            }
        }

        // Measurement phase: spread the time budget across the samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let sample_end = Instant::now() + per_sample;
            bencher.reset();
            loop {
                f(&mut bencher);
                if bencher.iterations == 0 || Instant::now() >= sample_end {
                    break;
                }
            }
            if bencher.iterations > 0 {
                per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
            }
        }

        if per_iter_ns.is_empty() {
            println!("{id:<48} (no iterations)");
        } else {
            let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = per_iter_ns.iter().cloned().fold(0.0_f64, f64::max);
            let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
            println!(
                "{id:<48} time: [{} {} {}]",
                format_ns(min),
                format_ns(mean),
                format_ns(max)
            );
        }
        self
    }

    /// Accepted for compatibility with `criterion_main!`-style drivers.
    pub fn final_summary(&mut self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn reset(&mut self) {
        self.elapsed = Duration::ZERO;
        self.iterations = 0;
    }

    /// Times repeated calls of `routine`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions and a
/// configuration into a single named group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`: expands to `fn main` running groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}
