//! Offline stand-in for `serde`.
//!
//! The workspace builds in an environment with no crates.io access, and no
//! code path actually serializes anything — the derives on data types mark
//! them as wire-friendly for a future real-serde swap. This shim provides the
//! two trait names plus the (empty-expansion) derive macros so that
//! `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged.
//!
//! The traits are implemented for every `Sized` type via blanket impls, so
//! generic bounds like `T: Serialize` also keep working.

#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
