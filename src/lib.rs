//! # symmap — Complex Library Mapping for Embedded Software Using Symbolic Algebra
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! Peymandoust, Simunic and De Micheli, *"Complex Library Mapping for Embedded
//! Software Using Symbolic Algebra"*, DAC 2002.
//!
//! The methodology has three steps, all automated here:
//!
//! 1. **Library characterization** ([`libchar`]) — each library element is
//!    labelled with its numeric signature, polynomial representation, cycle
//!    cost, energy cost and accuracy, measured on a simulated Badge4 /
//!    StrongARM SA-1110 platform ([`platform`]).
//! 2. **Target code identification** ([`core::identify`], [`ir`]) — critical
//!    procedures are found by profiling and formulated as multivariate
//!    polynomials using compiler transformations and series approximations.
//! 3. **Library mapping** ([`engine`]) — a branch-and-bound search
//!    decomposes the target polynomials into library elements using
//!    *simplification modulo side relations* on top of Gröbner bases
//!    ([`algebra`]); the [`engine::MappingEngine`] batch service fans
//!    independent mapping jobs out over a deterministic work-stealing
//!    worker pool sharing one sharded Gröbner cache.
//!
//! The evaluation workload of the paper, an MP3 audio decoder, is reproduced in
//! [`mp3`], together with the Linux-math / in-house fixed-point / IPP-like
//! libraries used in the paper's tables.
//!
//! ## Quickstart
//!
//! ```
//! use symmap::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A target polynomial: x^2 + 2*x*y + y^2 + x + y
//! let target = Poly::parse("x^2 + 2*x*y + y^2 + x + y")?;
//!
//! // A tiny library with one complex element: s = x + y  (cost 3 cycles)
//! let mut library = Library::new("tiny");
//! library.push(
//!     LibraryElement::builder("sum", "s")
//!         .polynomial(Poly::parse("x + y")?)
//!         .cycles(3)
//!         .energy_nj(5.0)
//!         .build()?,
//! );
//!
//! // Map the target onto the library.
//! let mapper = Mapper::new(&library, MapperConfig::default());
//! let solution = mapper.map_polynomial(&target)?;
//! assert!(solution.uses_element("sum"));
//! # Ok(())
//! # }
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use symmap_algebra as algebra;
pub use symmap_core as core;
pub use symmap_engine as engine;
pub use symmap_ir as ir;
pub use symmap_libchar as libchar;
pub use symmap_mp3 as mp3;
pub use symmap_numeric as numeric;
pub use symmap_platform as platform;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use symmap_algebra::{poly::Poly, simplify::SideRelations, var::VarSet};
    pub use symmap_core::pipeline::OptimizationPipeline;
    pub use symmap_engine::{
        EngineConfig, MapJob, Mapper, MapperConfig, MappingEngine, MappingSolution,
    };
    pub use symmap_libchar::{
        element::{LibraryElement, NumericFormat},
        library::Library,
    };
    pub use symmap_mp3::decoder::{Decoder, KernelSet};
    pub use symmap_platform::machine::Badge4;
}
