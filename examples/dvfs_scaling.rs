//! The closing argument of the paper (§4/§5): the optimized decoder runs
//! several times faster than real time, so the StrongARM's frequency and
//! voltage can be lowered while still meeting the 26 ms/frame deadline,
//! saving additional energy (E ∝ V²).
//!
//! Run with `cargo run --release --example dvfs_scaling`.

use symmap::mp3::decoder::{Decoder, KernelSet};
use symmap::mp3::frame::FrameGenerator;
use symmap::mp3::types::frame_duration_s;
use symmap::platform::machine::Badge4;
use symmap::platform::profiler::Profiler;

fn main() {
    let badge = Badge4::new();
    let deadline = frame_duration_s();

    // Measure the per-frame cycle count of the fully optimized decoder.
    let frame = FrameGenerator::new(3).frame();
    let profiler = Profiler::new();
    Decoder::new(KernelSet::in_house_with_ipp()).decode_frame(&frame, &profiler);
    let cycles_per_frame = profiler.profile(&badge).total_cycles();

    println!("optimized decoder: {cycles_per_frame} cycles per frame, deadline {deadline:.4} s");
    println!(
        "\n{:<12} {:>10} {:>14} {:>16}",
        "freq (MHz)", "V", "frame time (s)", "meets deadline"
    );
    for point in badge.dvfs().points() {
        let t = point.seconds_for(cycles_per_frame);
        println!(
            "{:<12.1} {:>10.2} {:>14.5} {:>16}",
            point.frequency_mhz,
            point.voltage_v,
            t,
            if t <= deadline { "yes" } else { "no" }
        );
    }

    let headroom = deadline / badge.dvfs().max().seconds_for(cycles_per_frame);
    let saving = badge
        .dvfs()
        .energy_saving_factor(cycles_per_frame, deadline);
    println!("\nheadroom at max frequency: {headroom:.1}x faster than real time");
    println!("energy saving from scaling to the slowest feasible point: {saving:.2}x");
    assert!(headroom > 1.0, "the optimized decoder must beat real time");
    assert!(saving >= 1.0);
}
