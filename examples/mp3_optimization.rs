//! The paper's headline experiment: optimize the MP3 decoder for the Badge4 by
//! mapping its critical functions onto the Linux-math, in-house and IPP
//! libraries, then compare performance, energy and compliance against the
//! original floating-point code.
//!
//! Run with `cargo run --release --example mp3_optimization`.

use symmap::core::pipeline::OptimizationPipeline;
use symmap::core::report;
use symmap::libchar::catalog;
use symmap::mp3::decoder::KernelSet;
use symmap::platform::machine::Badge4;

fn main() {
    let badge = Badge4::new();
    let frames = 16;

    // Step 1: characterize the full catalog (LM + IH + IPP plus the float
    // kernels already present in the original code).
    let library = catalog::full_catalog(&badge);
    println!("characterized {} library elements\n", library.len());

    // Steps 2 + 3: profile, identify, map, and measure.
    let pipeline = OptimizationPipeline::new(badge.clone(), library).with_stream_frames(frames);
    let original = pipeline.measure("Original", KernelSet::reference());
    let optimized = pipeline.run("IH + IPP SubBand & IMDCT");

    println!(
        "{}",
        report::render_profile("Original per-frame profile", &original)
    );
    println!(
        "{}",
        report::render_profile("Optimized per-frame profile", &optimized)
    );

    println!("mapping decisions:");
    for line in &optimized.mapping_summary {
        println!("  {line}");
    }

    let perf = optimized.perf_factor_vs(&original);
    let energy = optimized.energy_factor_vs(&original);
    println!("\nstream of {frames} frames:");
    println!(
        "  original : {:.2} s, {:.2} J",
        original.stream_seconds, original.stream_energy_j
    );
    println!(
        "  optimized: {:.4} s, {:.4} J  ({perf:.0}x faster, {energy:.0}x less energy)",
        optimized.stream_seconds, optimized.stream_energy_j
    );
    println!(
        "  compliance: rms error {:.2e} ({:?})",
        optimized.compliance.rms_error, optimized.compliance.level
    );
    println!("\n{}", report::render_dvfs(&optimized, frames, &badge));

    assert!(
        perf > 50.0,
        "the mapped decoder should be far faster than the original"
    );
    assert!(
        optimized.compliance.is_sufficient(),
        "the mapped decoder must stay compliant"
    );
}
