//! The paper's §1 motivating example: a code section calls `log`, and the
//! library holds four implementations (double, float, fixed-point bit
//! manipulation, fixed-point polynomial) with different accuracy / performance
//! trade-offs. The mapper picks the best one automatically for two different
//! accuracy requirements.
//!
//! Run with `cargo run --example log_mapping`.

use symmap::core::decompose::{Mapper, MapperConfig};
use symmap::ir::ast::Function;
use symmap::ir::polyextract::extract_polynomial;
use symmap::libchar::catalog;
use symmap::platform::machine::Badge4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The target code: an algorithmic-level kernel calling log(1 + x).
    let source = "loudness(x) { return log(x) * 20; }";
    let kernel = Function::parse(source)?;
    let target = extract_polynomial(&kernel)?;
    println!("target kernel : {source}");
    println!("as polynomial : {target}");

    let badge = Badge4::new();
    let library = catalog::log_library(&badge);
    println!("\ncharacterized log library:\n{library}");

    // A loose accuracy requirement lets the cheap bit-manipulation version win.
    let loose = Mapper::new(
        &library,
        MapperConfig {
            accuracy_tolerance: 1e-2,
            ..MapperConfig::default()
        },
    )
    .map_polynomial(&target)?;
    println!("loose accuracy (1e-2): picked {:?}", loose.element_names());

    // A tight requirement forces a more accurate (and more expensive) version.
    let tight = Mapper::new(
        &library,
        MapperConfig {
            accuracy_tolerance: 1e-4,
            ..MapperConfig::default()
        },
    )
    .map_polynomial(&target)?;
    println!("tight accuracy (1e-4): picked {:?}", tight.element_names());

    assert_ne!(loose.element_names(), tight.element_names());
    Ok(())
}
