//! Quickstart: map a small polynomial onto a toy library of complex elements.
//!
//! Run with `cargo run --example quickstart`.

use symmap::algebra::poly::Poly;
use symmap::core::decompose::{Mapper, MapperConfig};
use symmap::libchar::{Library, LibraryElement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "target code": a block that computes (x + y)^2 + x*y, written out in
    // expanded form as a compiler front end would see it.
    let target = Poly::parse("x^2 + 2*x*y + y^2 + x*y")?;

    // A characterized library with two complex elements: a sum and a product,
    // each annotated with its polynomial representation, cost and accuracy.
    let mut library = Library::new("toy");
    library.push(
        LibraryElement::builder("vector_sum", "s")
            .polynomial(Poly::parse("x + y")?)
            .cycles(4)
            .energy_nj(6.0)
            .accuracy(1e-9)
            .build()?,
    );
    library.push(
        LibraryElement::builder("vector_mul", "q")
            .polynomial(Poly::parse("x*y")?)
            .cycles(6)
            .energy_nj(9.0)
            .accuracy(1e-9)
            .build()?,
    );

    // Run the branch-and-bound mapper (Table 2 of the paper).
    let mapper = Mapper::new(&library, MapperConfig::default());
    let solution = mapper.map_polynomial(&target)?;

    println!("target    : {target}");
    println!("rewritten : {}", solution.rewritten);
    println!("elements  : {:?}", solution.element_names());
    println!(
        "cost      : {} cycles, {:.1} nJ",
        solution.cost.cycles, solution.cost.energy_nj
    );
    println!("verified  : {}", solution.verify());
    assert!(solution.verify(), "mapping must be functionally equivalent");
    assert!(solution.uses_element("vector_sum"));
    Ok(())
}
