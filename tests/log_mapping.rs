//! Integration test of the paper's §1 motivating example: choosing among four
//! `log` implementations with different accuracy/performance trade-offs.

use symmap::core::decompose::{Mapper, MapperConfig};
use symmap::ir::ast::Function;
use symmap::ir::polyextract::extract_polynomial;
use symmap::libchar::catalog;
use symmap::platform::machine::Badge4;

#[test]
fn accuracy_requirement_drives_the_choice_of_log_implementation() {
    let kernel = Function::parse("loudness(x) { return log(x) * 20; }").unwrap();
    let target = extract_polynomial(&kernel).unwrap();
    let badge = Badge4::new();
    let library = catalog::log_library(&badge);

    let loose = Mapper::new(
        &library,
        MapperConfig {
            accuracy_tolerance: 1e-2,
            ..MapperConfig::default()
        },
    )
    .map_polynomial(&target)
    .unwrap();
    let tight = Mapper::new(
        &library,
        MapperConfig {
            accuracy_tolerance: 1e-4,
            ..MapperConfig::default()
        },
    )
    .map_polynomial(&target)
    .unwrap();

    // Loose accuracy: the cheap bit-manipulation routine wins.
    assert_eq!(loose.element_names(), vec!["log_fixed_bitmanip"]);
    // Tight accuracy: the fixed-point polynomial version wins.
    assert_eq!(tight.element_names(), vec!["log_fixed_poly"]);

    // Both solutions are functionally equivalent rewrites of the target.
    for s in [&loose, &tight] {
        assert!(s.verify());
        assert!(s.is_complete());
    }
    // Tightening the accuracy requirement costs performance — the trade-off
    // the paper's §1 example illustrates.
    assert!(loose.cost.cycles < tight.cost.cycles);
}
