//! Integration test: from algorithmic-level source code, through the IR
//! transformations and polynomial extraction, into the symbolic mapper.

use symmap::algebra::poly::Poly;
use symmap::core::decompose::{Mapper, MapperConfig};
use symmap::ir::ast::Function;
use symmap::ir::polyextract::extract_polynomial;
use symmap::ir::transform::normalize;
use symmap::libchar::{Library, LibraryElement};

fn mac_library(taps: usize) -> Library {
    let mut lib = Library::new("dsp");
    let terms: Vec<String> = (0..taps).map(|k| format!("c_{k}*y_{k}")).collect();
    lib.push(
        LibraryElement::builder("fir_dot", "acc_out")
            .polynomial(Poly::parse(&terms.join(" + ")).unwrap())
            .cycles(3 * taps as u64)
            .energy_nj(taps as f64)
            .accuracy(1e-8)
            .build()
            .unwrap(),
    );
    lib.push(
        LibraryElement::builder("mac", "m")
            .polynomial(Poly::parse("c_0*y_0").unwrap())
            .cycles(3)
            .energy_nj(1.0)
            .accuracy(1e-8)
            .build()
            .unwrap(),
    );
    lib
}

#[test]
fn unrolled_fir_kernel_maps_onto_the_dot_product_element() {
    // A 4-tap FIR written with a loop, exactly how a designer would write it.
    let source = "fir(c_0, c_1, c_2, c_3, y_0, y_1, y_2, y_3) {
        acc = 0;
        for (k = 0; k < 4; k = k + 1) {
            acc = acc + c[k] * y[k];
        }
        return acc;
    }";
    let kernel = Function::parse(source).unwrap();

    // The normalization pipeline removes the loop without changing semantics.
    let normalized = normalize(&kernel);
    let args = [0.5, -0.25, 1.5, 2.0, 1.0, 2.0, 3.0, 4.0];
    assert_eq!(kernel.eval(&args).unwrap(), normalized.eval(&args).unwrap());

    // Polynomial extraction produces one large linear form (the §3.2 goal) …
    let poly = extract_polynomial(&kernel).unwrap();
    assert_eq!(poly.num_terms(), 4);

    // … which the mapper covers with the complex dot-product element rather
    // than a chain of single MACs.
    let library = mac_library(4);
    let solution = Mapper::new(&library, MapperConfig::default())
        .map_polynomial(&poly)
        .unwrap();
    assert!(solution.uses_element("fir_dot"));
    assert!(solution.is_complete());
    assert!(solution.verify());
}

#[test]
fn nonlinear_kernel_is_series_expanded_then_mapped() {
    // exp() is not a polynomial; identification substitutes a Taylor series
    // and the mapper matches it against a library element carrying the same
    // series representation.
    let kernel = Function::parse("warm(x) { return exp(x) - 1; }").unwrap();
    let poly = extract_polynomial(&kernel).unwrap();
    assert!(poly.total_degree() >= 4);

    let mut lib = Library::new("math");
    let series = {
        // The library element's polynomial is the same truncated series.
        let f = Function::parse("e(x) { return exp(x); }").unwrap();
        extract_polynomial(&f).unwrap()
    };
    lib.push(
        LibraryElement::builder("exp_table", "e_x")
            .polynomial(series)
            .cycles(35)
            .accuracy(1e-6)
            .build()
            .unwrap(),
    );
    let solution = Mapper::new(&lib, MapperConfig::default())
        .map_polynomial(&poly)
        .unwrap();
    assert!(solution.uses_element("exp_table"));
    assert!(solution.verify());
}
