//! End-to-end integration test: the full three-step methodology on the MP3
//! decoder workload, spanning every crate of the workspace.

use symmap::core::pipeline::{table6_libraries, OptimizationPipeline};
use symmap::core::report;
use symmap::libchar::catalog;
use symmap::mp3::decoder::{KernelSet, KernelVariant};
use symmap::platform::machine::Badge4;

#[test]
fn methodology_reproduces_the_paper_shape() {
    let badge = Badge4::new();
    let frames = 2;

    // Version list of Table 6 (without the hand-optimized last row).
    let mut versions = Vec::new();
    for (name, library) in table6_libraries(&badge) {
        let pipeline = OptimizationPipeline::new(badge.clone(), library).with_stream_frames(frames);
        let version = if name == "Original" {
            pipeline.measure("Original", KernelSet::reference())
        } else {
            pipeline.run(&name)
        };
        versions.push(version);
    }
    assert_eq!(versions.len(), 6);

    let original = &versions[0];
    let ih = &versions[3];
    let best = &versions[5];

    // Shape of Table 6: each successive library set is at least as fast, the
    // IH mapping buys roughly two orders of magnitude, the full mapping adds a
    // further integer factor, and every mapped version stays compliant.
    for pair in versions.windows(2) {
        assert!(
            pair[1].stream_seconds <= pair[0].stream_seconds * 1.05,
            "{} should not be slower than {}",
            pair[1].name,
            pair[0].name
        );
    }
    assert!(
        ih.perf_factor_vs(original) > 30.0,
        "IH factor {}",
        ih.perf_factor_vs(original)
    );
    assert!(best.perf_factor_vs(original) > 1.5 * ih.perf_factor_vs(original));
    assert!(best.energy_factor_vs(original) > 30.0);
    for v in &versions[1..] {
        assert!(v.compliance.is_sufficient(), "{} fails compliance", v.name);
    }

    // Shape of Table 3: the original profile is dominated by dequantization,
    // subband synthesis and the IMDCT, in that order.
    let pct = |name: &str| {
        original
            .frame_profile
            .entry(name)
            .map(|e| e.percent)
            .unwrap_or(0.0)
    };
    assert!(pct("III_dequantize_sample") > pct("SubBandSynthesis"));
    assert!(pct("SubBandSynthesis") > pct("inv_mdctL"));
    assert!(
        pct("III_dequantize_sample") + pct("SubBandSynthesis") + pct("inv_mdctL") > 85.0,
        "the three dominant functions should cover most of the frame"
    );

    // Shape of Table 5: with the full catalog the mapper selects the IPP
    // subband synthesis and IMDCT primitives, and the IPP subband routine is
    // still the largest single entry of the optimized profile.
    assert_eq!(best.kernels.synthesis, KernelVariant::Ipp);
    assert_eq!(best.kernels.imdct, KernelVariant::Ipp);
    assert!(best
        .frame_profile
        .entry("ippsSynthPQMF_MP3_32s16s")
        .is_some());

    // The optimized decoder beats real time, enabling DVFS energy savings.
    assert!(best.real_time_headroom(frames) > 1.0);
    let dvfs = report::render_dvfs(best, frames, &badge);
    assert!(dvfs.contains("faster than real time"));
}

#[test]
fn mapping_solutions_are_verified_rewrites() {
    let badge = Badge4::new();
    let pipeline = OptimizationPipeline::new(badge.clone(), catalog::full_catalog(&badge))
        .with_stream_frames(1);
    let (kernels, solutions) = pipeline.map_decoder();
    assert!(!solutions.is_empty());
    for (function, solution) in &solutions {
        assert!(
            solution.verify(),
            "mapping of {function} is not an equivalent rewrite"
        );
        assert!(
            solution.is_accurate_within(1e-3),
            "mapping of {function} exceeds the accuracy budget"
        );
    }
    // Every arithmetic stage moved off the reference kernels.
    assert_ne!(kernels.dequantize, KernelVariant::Reference);
    assert_ne!(kernels.synthesis, KernelVariant::Reference);
    assert_ne!(kernels.imdct, KernelVariant::Reference);
}
