//! Integration tests: the worked symbolic-algebra examples from §3.3 of the
//! paper, run through the public API of the umbrella crate.

use symmap::algebra::factor::factor;
use symmap::algebra::horner::horner_form;
use symmap::algebra::poly::Poly;
use symmap::algebra::simplify::{simplify_modulo, SideRelations};
use symmap::algebra::var::Var;

#[test]
fn maple_expand_example() {
    // > S := x^2*(x^14+x^15+1);  > P := expand(S);
    let s = Poly::parse("x^2*(x^14 + x^15 + 1)").unwrap();
    assert_eq!(s, Poly::parse("x^16 + x^17 + x^2").unwrap());
}

#[test]
fn maple_factor_example() {
    // > factor(P);  ==>  x^2*(x^14+x^15+1)
    let p = Poly::parse("x^16 + x^17 + x^2").unwrap();
    let f = factor(&p);
    assert_eq!(f.expand(), p);
    assert!(f
        .factors
        .iter()
        .any(|(q, m)| *q == Poly::parse("x").unwrap() && *m == 2));
    assert!(f
        .factors
        .iter()
        .any(|(q, _)| *q == Poly::parse("x^14 + x^15 + 1").unwrap()));
}

#[test]
fn maple_horner_example() {
    // > S := y^2*x + y*x^2 + 4*x*y + x^2 + 2*x;
    // > convert(S, 'horner', [x, y]);  ==>  (2+(4+y)*y+(y+1)*x)*x
    let s = Poly::parse("y^2*x + y*x^2 + 4*x*y + x^2 + 2*x").unwrap();
    let h = horner_form(&s, &[Var::new("x"), Var::new("y")]);
    // Lossless and with the Maple operation count (3 multiplications).
    assert_eq!(h.expand(), s);
    assert!(
        h.mul_count() <= 3,
        "horner form {h} uses {} muls",
        h.mul_count()
    );
    // The rendered form parses back to the same polynomial.
    assert_eq!(Poly::parse(&h.to_string()).unwrap(), s);
}

#[test]
fn maple_simplify_example() {
    // > S := x + x^3*y^2 - 2*x*y^3
    // > simplify(S, {p = x^2 - 2*y}, [x, y, p]);  ==>  x + y^2*x*p
    let s = Poly::parse("x + x^3*y^2 - 2*x*y^3").unwrap();
    let mut sr = SideRelations::new();
    sr.push("p", Poly::parse("x^2 - 2*y").unwrap()).unwrap();
    let reduced = simplify_modulo(&s, &sr, &["x", "y", "p"]).unwrap();
    assert_eq!(reduced, Poly::parse("x + y^2*x*p").unwrap());
    // Substituting the side relation back recovers the original polynomial.
    assert_eq!(sr.expand_back(&reduced), s);
}

#[test]
fn equation_1_is_a_first_order_polynomial() {
    // Equation 1: the IMDCT output is linear in the windowed samples y_k once
    // the cosines are precomputed.
    let poly = symmap::mp3::imdct::imdct_polynomial(3, 36);
    assert_eq!(poly.total_degree(), 1);
    assert_eq!(poly.num_terms(), 18);
}
