//! Differential test of the batch engine's determinism contract: mapping the
//! full 11-kernel MP3 batch must produce byte-identical `MappingSolution`s
//! at every worker count, across repeated runs, and with the modular (ℤ/p)
//! prefilter on or off — scheduling nondeterminism may move work between
//! threads and change cache *timing*, and the prefilter may add mod-p
//! probes, but never results. (See `DESIGN.md` §5/§6 for why this holds.)

use std::sync::Arc;

use symmap::engine::{EngineConfig, MapperConfig, MappingEngine};
use symmap::libchar::catalog;
use symmap::platform::machine::Badge4;
use symmap_bench::mp3_kernel_jobs;

fn run_batch_debug_with(workers: usize, modular_prefilter: bool) -> String {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    assert_eq!(jobs.len(), 11);
    let engine = MappingEngine::new(EngineConfig {
        workers,
        modular_prefilter,
        ..EngineConfig::default()
    });
    let batch = engine.run(&jobs);
    assert_eq!(batch.outcomes.len(), 11);
    // The Debug rendering covers every field of every outcome (targets,
    // rewrites, used elements, relations, costs, accuracy, node counts,
    // completeness), so equal strings mean byte-identical solutions.
    format!("{:?}", batch.outcomes)
}

fn run_batch_debug(workers: usize) -> String {
    // Inherit the ambient default so the SYMMAP_TEST_MODULAR CI run also
    // exercises these paths with the prefilter on.
    run_batch_debug_with(workers, EngineConfig::default().modular_prefilter)
}

#[test]
fn mp3_kernel_batch_is_byte_identical_across_worker_counts() {
    let sequential = run_batch_debug(1);
    for workers in [2, 4, 8] {
        assert_eq!(
            run_batch_debug(workers),
            sequential,
            "solutions diverged at {workers} workers"
        );
    }
}

#[test]
fn mp3_kernel_batch_is_byte_identical_with_modular_prefilter_on_and_off() {
    let reference = run_batch_debug_with(1, false);
    for workers in [1, 2, 4, 8] {
        for modular in [false, true] {
            assert_eq!(
                run_batch_debug_with(workers, modular),
                reference,
                "solutions diverged at {workers} workers, modular_prefilter={modular}"
            );
        }
    }
}

#[test]
fn modular_prefilter_probes_fire_on_the_mp3_batch() {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    let engine = MappingEngine::new(EngineConfig {
        workers: 1,
        modular_prefilter: true,
        ..EngineConfig::default()
    });
    let batch = engine.run(&jobs);
    // The mapper prices many candidate rewrites per kernel, so a real batch
    // must generate mod-p probe traffic — otherwise the prefilter is wired
    // to a dead path.
    let stats = &batch.stats;
    assert!(
        stats.fp_hits + stats.fp_rejects > 0,
        "no mod-p probes fired: fp_hits={} fp_rejects={} unlucky={}",
        stats.fp_hits,
        stats.fp_rejects,
        stats.unlucky_primes
    );
    let rendered = symmap::core::report::render_engine_stats(stats);
    assert!(rendered.contains("modular prefilter"), "{rendered}");
}

#[test]
fn mp3_kernel_batch_is_stable_across_repeated_runs() {
    // Repeated runs at a parallel worker count (fresh engine each time, so
    // each run re-races the cache) must also agree.
    let first = run_batch_debug(4);
    for _ in 0..2 {
        assert_eq!(run_batch_debug(4), first);
    }
}

#[test]
fn every_mp3_kernel_solution_verifies_and_all_stage_kernels_map() {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    let engine = MappingEngine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let batch = engine.run(&jobs);
    // The six identified stage kernels (job indices 0..6) must all map; the
    // extra IMDCT/synthesis lines may or may not, but whatever maps must be
    // a functionally equivalent rewrite.
    for (job, outcome) in jobs.iter().zip(&batch.outcomes).take(6) {
        assert!(outcome.is_ok(), "stage kernel {} failed to map", job.label);
    }
    for (job, solution) in jobs
        .iter()
        .zip(&batch.outcomes)
        .filter_map(|(j, o)| o.as_ref().ok().map(|s| (j, s)))
    {
        assert!(
            solution.verify(),
            "{}: rewrite is not functionally equivalent",
            job.label
        );
    }
    assert!(batch.stats.cache_misses() > 0);
}
