//! Differential test of the batch engine's determinism contract: mapping the
//! full 11-kernel MP3 batch must produce byte-identical `MappingSolution`s
//! at every worker count and across repeated runs — scheduling
//! nondeterminism may move work between threads and change cache *timing*,
//! but never results. (See `DESIGN.md` §5 for why this holds.)

use std::sync::Arc;

use symmap::engine::{EngineConfig, MapperConfig, MappingEngine};
use symmap::libchar::catalog;
use symmap::platform::machine::Badge4;
use symmap_bench::mp3_kernel_jobs;

fn run_batch_debug(workers: usize) -> String {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    assert_eq!(jobs.len(), 11);
    let engine = MappingEngine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    });
    let batch = engine.run(&jobs);
    assert_eq!(batch.outcomes.len(), 11);
    // The Debug rendering covers every field of every outcome (targets,
    // rewrites, used elements, relations, costs, accuracy, node counts,
    // completeness), so equal strings mean byte-identical solutions.
    format!("{:?}", batch.outcomes)
}

#[test]
fn mp3_kernel_batch_is_byte_identical_across_worker_counts() {
    let sequential = run_batch_debug(1);
    for workers in [2, 4, 8] {
        assert_eq!(
            run_batch_debug(workers),
            sequential,
            "solutions diverged at {workers} workers"
        );
    }
}

#[test]
fn mp3_kernel_batch_is_stable_across_repeated_runs() {
    // Repeated runs at a parallel worker count (fresh engine each time, so
    // each run re-races the cache) must also agree.
    let first = run_batch_debug(4);
    for _ in 0..2 {
        assert_eq!(run_batch_debug(4), first);
    }
}

#[test]
fn every_mp3_kernel_solution_verifies_and_all_stage_kernels_map() {
    let badge = Badge4::new();
    let library = Arc::new(catalog::full_catalog(&badge));
    let jobs = mp3_kernel_jobs(&library, &MapperConfig::default());
    let engine = MappingEngine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let batch = engine.run(&jobs);
    // The six identified stage kernels (job indices 0..6) must all map; the
    // extra IMDCT/synthesis lines may or may not, but whatever maps must be
    // a functionally equivalent rewrite.
    for (job, outcome) in jobs.iter().zip(&batch.outcomes).take(6) {
        assert!(outcome.is_ok(), "stage kernel {} failed to map", job.label);
    }
    for (job, solution) in jobs
        .iter()
        .zip(&batch.outcomes)
        .filter_map(|(j, o)| o.as_ref().ok().map(|s| (j, s)))
    {
        assert!(
            solution.verify(),
            "{}: rewrite is not functionally equivalent",
            job.label
        );
    }
    assert!(batch.stats.cache_misses() > 0);
}
